"""Unit tests for the analytic I/O bounds (Lemma 1, Lemma 2, Theorem 2)."""

import pytest

from repro.core.bounds import (
    cluster_page_reads,
    io_savings_over_pm_nlj,
    nlj_page_reads,
    pm_nlj_min_page_reads,
)


class TestLemma1:
    def test_paper_worked_example(self):
        """Section 6: r=3, c=2, e=5 => 5 + min(3,2) = 7 disk I/Os."""
        assert pm_nlj_min_page_reads(5, 3, 2) == 7

    def test_single_entry(self):
        assert pm_nlj_min_page_reads(1, 1, 1) == 2

    def test_rejects_impossible_regions(self):
        with pytest.raises(ValueError):
            pm_nlj_min_page_reads(1, 2, 2)  # 1 entry cannot span 2 rows
        with pytest.raises(ValueError):
            pm_nlj_min_page_reads(10, 2, 2)  # more entries than grid cells
        with pytest.raises(ValueError):
            pm_nlj_min_page_reads(0, 0, 0)


class TestNljReads:
    def test_paper_worked_example(self):
        """Section 6 / Example 1: full 3x4 region costs 12 + 3 = 15 reads."""
        assert nlj_page_reads(3, 4) == 15

    def test_equals_pm_nlj_with_all_marked(self):
        for rows, cols in [(3, 4), (5, 5), (2, 9)]:
            assert nlj_page_reads(rows, cols) == pm_nlj_min_page_reads(
                rows * cols, rows, cols
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            nlj_page_reads(0, 3)


class TestLemma2:
    def test_cluster_reads(self):
        assert cluster_page_reads(3, 2, buffer_pages=5) == 5

    def test_rejects_overflowing_cluster(self):
        with pytest.raises(ValueError):
            cluster_page_reads(3, 3, buffer_pages=5)


class TestTheorem2:
    def test_paper_example_savings(self):
        """Example region: 5 entries, 3 rows, 2 cols => saves 5 - 3 = 2."""
        assert io_savings_over_pm_nlj(5, 3, 2) == 2

    def test_consistency_with_lemmas(self):
        for e, r, c in [(5, 3, 2), (10, 4, 3), (9, 3, 3)]:
            expected = pm_nlj_min_page_reads(e, r, c) - (r + c)
            assert io_savings_over_pm_nlj(e, r, c) == expected

    def test_square_maximises_savings_at_fixed_budget(self):
        """Observation 1 after Theorem 2: for r + c fixed, r = c is best."""
        budget = 10
        e = 16  # achievable by every split below
        best = max(
            io_savings_over_pm_nlj(e, r, budget - r)
            for r in range(4, 7)
            if e <= r * (budget - r)
        )
        assert best == io_savings_over_pm_nlj(e, 5, 5)

    def test_denser_clusters_save_more(self):
        """Observation 2: savings grow with the number of marked entries."""
        assert io_savings_over_pm_nlj(9, 3, 3) > io_savings_over_pm_nlj(5, 3, 3)

"""Mega-batch vs per-pair equivalence: the cluster-granular execution
engine must be observationally identical to the classic per-page-pair
path — pairs (order included), every simulated cost, every semantic
counter and every Lemma audit — with only the kernel invocation counts
(``BATCHING_VARIANT_COUNTERS``) allowed to differ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.datasets import markov_dna
from repro.obs import (
    BACKEND_VARIANT_COUNTER_PREFIXES,
    BATCHING_VARIANT_COUNTERS,
    InMemoryRecorder,
)
from repro.sequence.subjoin import subsequence_join


def _semantic_counters(recorder: InMemoryRecorder) -> dict:
    counters = recorder.metrics_snapshot()["counters"]
    return {
        name: value
        for name, value in counters.items()
        if name not in BATCHING_VARIANT_COUNTERS
        and not name.startswith(BACKEND_VARIANT_COUNTER_PREFIXES)
    }


def _run(r, s, epsilon, *, batch_pairs, method="sc", workers=1, **kwargs):
    rec = InMemoryRecorder()
    result = join(
        r, s, epsilon, method=method, buffer_pages=10, workers=workers,
        batch_pairs=batch_pairs, recorder=rec, **kwargs
    )
    return result, rec


def _assert_identical(baseline, candidate):
    """Bit-identical observable behaviour between two join runs."""
    base_result, base_rec = baseline
    cand_result, cand_rec = candidate
    assert cand_result.pairs == base_result.pairs
    br, cr = base_result.report, cand_result.report
    assert cr.result_pairs == br.result_pairs
    assert cr.comparisons == br.comparisons
    assert cr.cpu_seconds == br.cpu_seconds
    assert cr.io_seconds == br.io_seconds
    assert cr.page_reads == br.page_reads
    assert cr.seeks == br.seeks
    assert cr.buffer_hits == br.buffer_hits
    assert cr.extra["pages_reused"] == br.extra["pages_reused"]
    assert _semantic_counters(cand_rec) == _semantic_counters(base_rec)


@pytest.fixture(scope="module")
def series_pair():
    rng = np.random.default_rng(7)
    walk = np.cumsum(rng.normal(size=600))
    r = IndexedDataset.from_time_series(walk, window_length=16, windows_per_page=32)
    s = IndexedDataset.from_time_series(
        walk[100:500] + rng.normal(scale=0.05, size=400),
        window_length=16,
        windows_per_page=32,
    )
    return r, s


@pytest.fixture(scope="module")
def dtw_pair():
    rng = np.random.default_rng(11)
    walk = np.cumsum(rng.normal(size=500))
    r = IndexedDataset.from_time_series(
        walk, window_length=12, windows_per_page=24, dtw_band=2
    )
    s = IndexedDataset.from_time_series(
        walk[50:450] + rng.normal(scale=0.05, size=400),
        window_length=12,
        windows_per_page=24,
        dtw_band=2,
    )
    return r, s


@pytest.fixture(scope="module")
def text_pair():
    r = IndexedDataset.from_string(
        markov_dna(1200, seed=5), window_length=8, windows_per_page=24
    )
    s = IndexedDataset.from_string(
        markov_dna(900, seed=6), window_length=8, windows_per_page=24
    )
    return r, s


class TestVectorEquivalence:
    @pytest.mark.parametrize("method", ["sc", "cc"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_euclidean_megabatch_matches_per_pair(self, vector_pair, method, workers):
        r, s = vector_pair
        baseline = _run(r, s, 0.05, batch_pairs=1, method=method, workers=workers)
        megabatch = _run(r, s, 0.05, batch_pairs=None, method=method, workers=workers)
        _assert_identical(baseline, megabatch)

    def test_manhattan_megabatch_matches_per_pair(self, small_points, rng):
        other = np.clip(
            small_points[:200] + rng.normal(scale=0.02, size=(200, 2)), 0, 1
        )
        r = IndexedDataset.from_points(small_points, page_capacity=16, p=1.0)
        s = IndexedDataset.from_points(other, page_capacity=16, p=1.0)
        baseline = _run(r, s, 0.05, batch_pairs=1)
        megabatch = _run(r, s, 0.05, batch_pairs=None)
        _assert_identical(baseline, megabatch)

    def test_self_join_diagonal_filter_survives_batching(self, vector_pair):
        r, _ = vector_pair
        baseline = _run(r, r, 0.03, batch_pairs=1)
        megabatch = _run(r, r, 0.03, batch_pairs=None)
        _assert_identical(baseline, megabatch)
        # Self matches really are excluded, not merely equal on both paths.
        assert all(a < b for a, b in megabatch[0].pairs)

    def test_intermediate_batch_sizes_match(self, vector_pair):
        r, s = vector_pair
        baseline = _run(r, s, 0.05, batch_pairs=1)
        for batch_pairs in (2, 3, 7):
            chunked = _run(r, s, 0.05, batch_pairs=batch_pairs)
            _assert_identical(baseline, chunked)

    def test_count_only_cardinality_matches(self, vector_pair):
        r, s = vector_pair
        baseline = _run(r, s, 0.05, batch_pairs=1, count_only=True)
        megabatch = _run(r, s, 0.05, batch_pairs=None, count_only=True)
        _assert_identical(baseline, megabatch)
        assert megabatch[0].pairs == []
        assert megabatch[0].num_pairs > 0


class TestSequenceEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_series_window_join_matches(self, series_pair, workers):
        r, s = series_pair
        baseline = _run(r, s, 0.5, batch_pairs=1, workers=workers)
        megabatch = _run(r, s, 0.5, batch_pairs=None, workers=workers)
        _assert_identical(baseline, megabatch)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_dtw_join_matches(self, dtw_pair, workers):
        r, s = dtw_pair
        baseline = _run(r, s, 0.6, batch_pairs=1, workers=workers)
        megabatch = _run(r, s, 0.6, batch_pairs=None, workers=workers)
        _assert_identical(baseline, megabatch)
        assert baseline[0].num_pairs > 0

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("epsilon", [0.0, 1.0, 2.0])
    def test_text_join_matches(self, text_pair, workers, epsilon):
        # epsilon spans the joiner's three regimes: Hamming-only accept
        # (0), Hamming accept/reject (1), and the DP fallback (2).
        r, s = text_pair
        baseline = _run(r, s, epsilon, batch_pairs=1, workers=workers)
        megabatch = _run(r, s, epsilon, batch_pairs=None, workers=workers)
        _assert_identical(baseline, megabatch)

    def test_text_self_join_matches(self, dna_dataset):
        baseline = _run(dna_dataset, dna_dataset, 1.0, batch_pairs=1)
        megabatch = _run(dna_dataset, dna_dataset, 1.0, batch_pairs=None)
        _assert_identical(baseline, megabatch)
        assert all(a < b for a, b in megabatch[0].pairs)

    def test_subsequence_join_batch_pairs_passthrough(self):
        text = markov_dna(800, seed=9)
        per_pair = subsequence_join(
            text, None, window_length=6, epsilon=1.0,
            buffer_pages=6, windows_per_page=16, batch_pairs=1,
        )
        fused = subsequence_join(
            text, None, window_length=6, epsilon=1.0,
            buffer_pages=6, windows_per_page=16,
        )
        assert fused.offsets == per_pair.offsets
        assert fused.report.page_reads == per_pair.report.page_reads


class TestInvariantsUnderBatching:
    def test_lemma_audits_identical(self, vector_pair):
        r, s = vector_pair
        audits = []
        for batch_pairs in (1, None):
            _, rec = _run(r, s, 0.05, batch_pairs=batch_pairs)
            counters = rec.metrics_snapshot()["counters"]
            audits.append(
                (
                    counters["lemma.clusters_audited"],
                    counters.get("lemma.violations", 0),
                )
            )
        assert audits[0] == audits[1]
        assert audits[0][1] == 0

    def test_megabatch_marker_counters_present(self, vector_pair):
        r, s = vector_pair
        _, rec = _run(r, s, 0.05, batch_pairs=None)
        counters = rec.metrics_snapshot()["counters"]
        assert counters["executor.megabatch_clusters"] == counters["executor.clusters"]
        assert counters["kernel.minkowski.invocations"] > 0
        _, rec_pp = _run(r, s, 0.05, batch_pairs=1)
        counters_pp = rec_pp.metrics_snapshot()["counters"]
        assert "executor.megabatch_clusters" not in counters_pp
        # Fewer kernel launches is the point of the mega-batch.
        assert (
            counters["kernel.minkowski.invocations"]
            < counters_pp["kernel.minkowski.invocations"]
        )

    def test_plain_callable_joiner_falls_back(self, vector_pair, pool):
        from repro.core.executor import execute_clusters
        from repro.core.square import square_clustering
        from repro.core.sweep import build_prediction_matrix

        r, s = vector_pair
        matrix, _ = build_prediction_matrix(
            r.index.root, s.index.root, 0.05, r.num_pages, s.num_pages
        )
        clusters, _ = square_clustering(matrix, pool.capacity)
        calls = []

        def counting_joiner(row, col, r_payload, s_payload):
            calls.append((row, col))
            return [], 0, 0, 0.0

        execute_clusters(clusters, pool, r.paged, s.paged, counting_joiner)
        assert len(calls) == matrix.num_marked

    def test_batch_pairs_validation(self, vector_pair):
        r, s = vector_pair
        with pytest.raises(ValueError, match="batch_pairs"):
            join(r, s, 0.05, buffer_pages=10, batch_pairs=0)


class TestNonLruPolicies:
    """FIFO/MRU victims may differ with pins; pins only ever avoid
    re-reads, so results stay equal and physical reads never increase."""

    @pytest.mark.parametrize("policy", ["fifo", "mru"])
    def test_results_equal_and_reads_bounded(self, vector_pair, policy):
        r, s = vector_pair
        per_pair, _ = _run(r, s, 0.05, batch_pairs=1, buffer_policy=policy)
        fused, _ = _run(r, s, 0.05, batch_pairs=None, buffer_policy=policy)
        assert fused.pairs == per_pair.pairs
        assert fused.report.comparisons == per_pair.report.comparisons
        assert fused.report.page_reads <= per_pair.report.page_reads

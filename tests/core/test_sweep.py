"""Unit tests for the plane sweep and prediction-matrix construction."""

import numpy as np
import pytest

from repro.core.join import IndexedDataset
from repro.core.sweep import build_prediction_matrix, sweep_pairs
from repro.geometry import Rect


class TestSweepPairs:
    def test_matches_brute_force(self, rng):
        for _ in range(20):
            left = [(self._rect(rng), f"L{k}") for k in range(12)]
            right = [(self._rect(rng), f"R{k}") for k in range(10)]
            swept = set(sweep_pairs(left, right))
            brute = {
                (pl, pr)
                for bl, pl in left
                for br, pr in right
                if bl.intersects(br)
            }
            assert swept == brute

    def test_touching_boxes_detected(self):
        left = [(Rect([0, 0], [1, 1]), "a")]
        right = [(Rect([1, 0], [2, 1]), "b")]
        assert list(sweep_pairs(left, right)) == [("a", "b")]

    def test_empty_sides(self):
        assert list(sweep_pairs([], [(Rect([0, 0], [1, 1]), "x")])) == []

    @staticmethod
    def _rect(rng):
        lo = rng.uniform(0, 5, size=2)
        return Rect(lo, lo + rng.uniform(0, 2, size=2))


class TestBuildPredictionMatrix:
    def test_completeness_theorem1_vectors(self, rng):
        """Theorem 1: every truly-joining object pair's page pair is marked."""
        pts_r = rng.random((150, 2))
        pts_s = rng.random((120, 2))
        r = IndexedDataset.from_points(pts_r, page_capacity=8)
        s = IndexedDataset.from_points(pts_s, page_capacity=8)
        epsilon = 0.15
        matrix, _ = build_prediction_matrix(
            r.index.root, s.index.root, epsilon, r.num_pages, s.num_pages
        )
        vec_r, vec_s = r.paged.vectors, s.paged.vectors
        for i in range(vec_r.shape[0]):
            dists = np.linalg.norm(vec_s - vec_r[i], axis=1)
            for j in np.nonzero(dists <= epsilon)[0]:
                page_r = r.paged.page_of_object(i)
                page_s = s.paged.page_of_object(int(j))
                assert matrix.is_marked(page_r, page_s)

    def test_zero_epsilon_still_complete(self, rng):
        pts = rng.random((60, 2))
        r = IndexedDataset.from_points(pts, page_capacity=8)
        s = IndexedDataset.from_points(pts.copy(), page_capacity=8)
        matrix, _ = build_prediction_matrix(
            r.index.root, s.index.root, 0.0, r.num_pages, s.num_pages
        )
        for i in range(60):
            page_r = r.paged.page_of_object(int(np.nonzero(r.index.order == i)[0][0]))
            # the same point exists in s; its page pair must be marked
            page_s = s.paged.page_of_object(int(np.nonzero(s.index.order == i)[0][0]))
            assert matrix.is_marked(page_r, page_s)

    def test_filter_depth_does_not_change_completeness(self, rng):
        pts_r = rng.random((100, 2))
        pts_s = rng.random((100, 2))
        r = IndexedDataset.from_points(pts_r, page_capacity=8)
        s = IndexedDataset.from_points(pts_s, page_capacity=8)
        m_nofilter, _ = build_prediction_matrix(
            r.index.root, s.index.root, 0.1, r.num_pages, s.num_pages, max_filter_rounds=0
        )
        m_filtered, _ = build_prediction_matrix(
            r.index.root, s.index.root, 0.1, r.num_pages, s.num_pages, max_filter_rounds=5
        )
        # Filtering prunes *non-candidates* only: identical marks.
        assert m_nofilter == m_filtered

    def test_stats_populated(self, rng):
        r = IndexedDataset.from_points(rng.random((100, 2)), page_capacity=8)
        s = IndexedDataset.from_points(rng.random((100, 2)), page_capacity=8)
        matrix, stats = build_prediction_matrix(
            r.index.root, s.index.root, 0.1, r.num_pages, s.num_pages
        )
        assert stats.endpoints_processed > 0
        assert stats.intersection_tests > 0
        assert stats.leaf_pairs_marked == matrix.num_marked
        assert stats.total_operations > 0

    def test_rejects_negative_epsilon(self, rng):
        r = IndexedDataset.from_points(rng.random((20, 2)), page_capacity=8)
        with pytest.raises(ValueError):
            build_prediction_matrix(
                r.index.root, r.index.root, -0.1, r.num_pages, r.num_pages
            )

    def test_text_completeness(self, dna_dataset):
        """Theorem 1 chain for strings: ED <= eps => page pair marked."""
        from repro.distance.edit import edit_distance

        ds = dna_dataset.paged
        epsilon = 1
        matrix, _ = build_prediction_matrix(
            dna_dataset.index.root, dna_dataset.index.root,
            epsilon, ds.num_pages, ds.num_pages,
        )
        text = ds.sequence
        w = ds.window_length
        # Sample window pairs; any pair within edit distance 1 must have
        # its page pair marked.
        step = 17
        offsets = range(0, ds.num_windows, step)
        for p in offsets:
            for q in offsets:
                if edit_distance(text[p : p + w], text[q : q + w], max_dist=epsilon) <= epsilon:
                    assert matrix.is_marked(ds.page_of_offset(p), ds.page_of_offset(q))

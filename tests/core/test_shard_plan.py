"""Shard planner: every strategy partitions the schedule; affinity balances.

The planner (ISSUE 6 tentpole, part a) splits the ordered cluster list
into ``k`` shard-local sets using exact work-matrix cell counts for
balance and sharing-graph page overlap to curb cross-shard duplication.
"""

import numpy as np
import pytest

from repro.core.clusters import Cluster
from repro.core.planner import SHARD_STRATEGIES, ShardPlan, plan_shards
from repro.storage.page import VectorPagedDataset


@pytest.fixture
def datasets():
    r = VectorPagedDataset(
        np.arange(64, dtype=float).reshape(32, 2), objects_per_page=4, dataset_id="R"
    )
    s = VectorPagedDataset(
        np.arange(48, dtype=float).reshape(24, 2), objects_per_page=4, dataset_id="S"
    )
    return r, s


CLUSTERS = [
    Cluster(0, ((0, 0), (0, 1), (1, 0), (1, 1))),
    Cluster(1, ((2, 2),)),
    Cluster(2, ((3, 3), (4, 3))),
    Cluster(3, ((5, 4), (5, 5), (6, 5))),
    Cluster(4, ((7, 0),)),
    Cluster(5, ((2, 1), (3, 1))),
    Cluster(6, ((6, 2),)),
]


class TestPartitionInvariants:
    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 16])
    def test_exact_partition(self, datasets, strategy, workers):
        r, s = datasets
        plan = plan_shards(CLUSTERS, r, s, workers, strategy)
        plan.validate(len(CLUSTERS))
        covered = sorted(i for shard in plan.shards for i in shard)
        assert covered == list(range(len(CLUSTERS)))
        # No empty shards survive, so num_shards <= min(workers, clusters).
        assert 1 <= plan.num_shards <= min(workers, len(CLUSTERS))
        assert all(shard for shard in plan.shards)

    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_members_ascend_within_shard(self, datasets, strategy):
        r, s = datasets
        plan = plan_shards(CLUSTERS, r, s, 3, strategy)
        for shard in plan.shards:
            assert list(shard) == sorted(shard)

    def test_single_worker_is_identity(self, datasets):
        r, s = datasets
        plan = plan_shards(CLUSTERS, r, s, 1)
        assert plan.shards == (tuple(range(len(CLUSTERS))),)
        assert plan.duplicated_pages == 0

    def test_empty_schedule(self, datasets):
        r, s = datasets
        plan = plan_shards([], r, s, 4)
        assert plan.shards == ()
        assert plan.costs == ()
        plan.validate(0)

    def test_deterministic(self, datasets):
        r, s = datasets
        a = plan_shards(CLUSTERS, r, s, 3, "affinity")
        b = plan_shards(CLUSTERS, r, s, 3, "affinity")
        assert a == b

    def test_rejects_bad_arguments(self, datasets):
        r, s = datasets
        with pytest.raises(ValueError):
            plan_shards(CLUSTERS, r, s, 0)
        with pytest.raises(ValueError):
            plan_shards(CLUSTERS, r, s, 2, "zigzag")


class TestCosts:
    def test_costs_sum_to_total(self, datasets):
        r, s = datasets

        def cluster_cost(cluster):
            return sum(
                r.object_count(row) * s.object_count(col)
                for row, col in cluster.entries
            )

        total = sum(cluster_cost(c) for c in CLUSTERS)
        for strategy in SHARD_STRATEGIES:
            plan = plan_shards(CLUSTERS, r, s, 3, strategy)
            assert sum(plan.costs) == total
            for shard, cost in zip(plan.shards, plan.costs):
                assert cost == sum(cluster_cost(CLUSTERS[i]) for i in shard)

    def test_affinity_no_worse_balance_than_roundrobin(self, datasets, rng):
        """LPT greedy keeps max shard load <= the modulo baseline's."""
        r = VectorPagedDataset(
            rng.random((128, 2)), objects_per_page=4, dataset_id="AR"
        )
        s = VectorPagedDataset(
            rng.random((96, 2)), objects_per_page=4, dataset_id="AS"
        )
        clusters = [
            Cluster(
                i,
                tuple(
                    (int(a), int(b))
                    for a, b in zip(
                        rng.integers(0, r.num_pages, size=n),
                        rng.integers(0, s.num_pages, size=n),
                    )
                ),
            )
            for i, n in enumerate(rng.integers(1, 8, size=20))
        ]
        affinity = plan_shards(clusters, r, s, 4, "affinity")
        baseline = plan_shards(clusters, r, s, 4, "roundrobin")
        assert max(affinity.costs) <= max(baseline.costs)


class TestDuplication:
    def test_duplicated_pages_formula(self, datasets):
        r, s = datasets
        from repro.core.schedule import cluster_page_codes

        for strategy in SHARD_STRATEGIES:
            plan = plan_shards(CLUSTERS, r, s, 3, strategy)
            shard_pages = [
                set().union(
                    *(set(cluster_page_codes(CLUSTERS[i], False).tolist())
                      for i in shard)
                )
                for shard in plan.shards
            ]
            union = set().union(*shard_pages)
            assert plan.duplicated_pages == sum(map(len, shard_pages)) - len(union)

    def test_chunk_keeps_schedule_contiguous(self, datasets):
        r, s = datasets
        plan = plan_shards(CLUSTERS, r, s, 3, "chunk")
        for shard in plan.shards:
            assert list(shard) == list(range(shard[0], shard[-1] + 1))


class TestValidate:
    def test_rejects_missing_index(self):
        plan = ShardPlan("chunk", ((0, 1), (3,)), (1, 1), 0)
        with pytest.raises(ValueError):
            plan.validate(4)

    def test_rejects_duplicate_index(self):
        plan = ShardPlan("chunk", ((0, 1), (1, 2)), (1, 1), 0)
        with pytest.raises(ValueError):
            plan.validate(3)

    def test_rejects_unsorted_members(self):
        plan = ShardPlan("chunk", ((1, 0),), (1,), 0)
        with pytest.raises(ValueError):
            plan.validate(2)

    def test_rejects_cost_arity_mismatch(self):
        plan = ShardPlan("chunk", ((0,), (1,)), (1,), 0)
        with pytest.raises(ValueError):
            plan.validate(2)

    def test_shard_of_inverts_shards(self):
        plan = ShardPlan("chunk", ((0, 2), (1, 3)), (5, 7), 0)
        assert plan.shard_of() == {0: 0, 2: 0, 1: 1, 3: 1}

"""Cross-backend join equivalence (ISSUE 8 tentpole acceptance).

Every registered kernel backend must be *observationally identical* on
full joins — pairs (order included), every simulated cost field, every
recorder counter except the per-backend invocation tally itself —
across joiner kinds (vector, DTW sequence, text), worker counts {1, 2},
and serial vs process-sharded execution.  The per-backend counters are
additionally checked directly: they must appear under the selected
backend's name, and their shard sums must equal the serial totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.datasets import markov_dna
from repro.kernels import registered_backends
from repro.obs import (
    BACKEND_VARIANT_COUNTER_PREFIXES,
    BATCHING_VARIANT_COUNTERS,
    SHARDING_VARIANT_COUNTER_PREFIXES,
    InMemoryRecorder,
)
from repro.storage.shm import shm_available

BACKENDS = sorted(registered_backends())


def _semantic_counters(recorder: InMemoryRecorder) -> dict:
    """Counters that must match across backends and execution modes."""
    return {
        name: value
        for name, value in recorder.metrics_snapshot()["counters"].items()
        if name not in BATCHING_VARIANT_COUNTERS
        and not name.startswith(SHARDING_VARIANT_COUNTER_PREFIXES)
        and not name.startswith(BACKEND_VARIANT_COUNTER_PREFIXES)
    }


def _backend_counters(recorder: InMemoryRecorder) -> dict:
    return {
        name: value
        for name, value in recorder.metrics_snapshot()["counters"].items()
        if name.startswith(BACKEND_VARIANT_COUNTER_PREFIXES)
    }


def _run(r, s, epsilon, *, backend, workers=1, shard_strategy=None):
    rec = InMemoryRecorder()
    result = join(
        r, s, epsilon, method="sc", buffer_pages=10, workers=workers,
        shard_strategy=shard_strategy, kernel_backend=backend, recorder=rec,
    )
    return result, rec


def _assert_identical(baseline, candidate):
    base_result, base_rec = baseline
    cand_result, cand_rec = candidate
    assert cand_result.pairs == base_result.pairs
    br, cr = base_result.report, cand_result.report
    assert cr.result_pairs == br.result_pairs
    assert cr.comparisons == br.comparisons
    assert cr.cpu_seconds == br.cpu_seconds
    assert cr.io_seconds == br.io_seconds
    assert cr.page_reads == br.page_reads
    assert cr.seeks == br.seeks
    assert cr.buffer_hits == br.buffer_hits
    assert _semantic_counters(cand_rec) == _semantic_counters(base_rec)


@pytest.fixture(scope="module")
def dtw_pair():
    rng = np.random.default_rng(11)
    walk = np.cumsum(rng.normal(size=500))
    r = IndexedDataset.from_time_series(
        walk, window_length=12, windows_per_page=24, dtw_band=2
    )
    s = IndexedDataset.from_time_series(
        walk[50:450] + rng.normal(scale=0.05, size=400),
        window_length=12,
        windows_per_page=24,
        dtw_band=2,
    )
    return r, s


@pytest.fixture(scope="module")
def text_pair():
    r = IndexedDataset.from_string(
        markov_dna(1200, seed=5), window_length=8, windows_per_page=24
    )
    s = IndexedDataset.from_string(
        markov_dna(900, seed=6), window_length=8, windows_per_page=24
    )
    return r, s


class TestBackendsIdentical:
    """numpy is the oracle; every other backend must match it exactly."""

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_vector_join(self, vector_pair, backend, workers):
        r, s = vector_pair
        baseline = _run(r, s, 0.05, backend="numpy", workers=workers)
        candidate = _run(r, s, 0.05, backend=backend, workers=workers)
        _assert_identical(baseline, candidate)
        assert baseline[0].num_pairs > 0

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dtw_join(self, dtw_pair, backend, workers):
        r, s = dtw_pair
        baseline = _run(r, s, 0.6, backend="numpy", workers=workers)
        candidate = _run(r, s, 0.6, backend=backend, workers=workers)
        _assert_identical(baseline, candidate)
        assert baseline[0].num_pairs > 0

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_text_join(self, text_pair, backend, workers):
        r, s = text_pair
        baseline = _run(r, s, 2.0, backend="numpy", workers=workers)
        candidate = _run(r, s, 2.0, backend=backend, workers=workers)
        _assert_identical(baseline, candidate)
        assert baseline[0].num_pairs > 0


@pytest.mark.skipif(not shm_available(), reason="platform without usable shared memory")
class TestShardedBackendParity:
    """Per-backend counters are NOT sharding-variant: each worker runs
    the same clusters it would serially, so shard sums equal serial
    totals — checked here with the backend counters *included*."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dtw_join_sharded_matches_serial(self, dtw_pair, backend):
        r, s = dtw_pair
        serial = _run(r, s, 0.6, backend=backend)
        sharded = _run(
            r, s, 0.6, backend=backend, workers=2, shard_strategy="affinity"
        )
        _assert_identical(serial, sharded)
        assert _backend_counters(sharded[1]) == _backend_counters(serial[1])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_text_join_sharded_matches_serial(self, text_pair, backend):
        r, s = text_pair
        serial = _run(r, s, 2.0, backend=backend)
        sharded = _run(
            r, s, 2.0, backend=backend, workers=2, shard_strategy="chunk"
        )
        _assert_identical(serial, sharded)
        assert _backend_counters(sharded[1]) == _backend_counters(serial[1])


class TestBackendObservability:
    """Satellite 4: the backend is visible in spans and counters."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_megabatch_span_carries_backend_attr(self, dtw_pair, backend):
        r, s = dtw_pair
        _, rec = _run(r, s, 0.6, backend=backend)
        spans = [sp for sp in rec.spans if sp.name == "execute.megabatch"]
        assert spans
        assert all(sp.attrs.get("kernel_backend") == backend for sp in spans)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dtw_invocation_counter_named_after_backend(self, dtw_pair, backend):
        r, s = dtw_pair
        _, rec = _run(r, s, 0.6, backend=backend)
        counters = _backend_counters(rec)
        assert counters.get(f"kernel.backend.{backend}.dtw.invocations", 0) > 0
        # Only the selected backend's counters exist.
        assert all(name.startswith(f"kernel.backend.{backend}.") for name in counters)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_edit_invocation_counter_named_after_backend(self, text_pair, backend):
        r, s = text_pair
        _, rec = _run(r, s, 2.0, backend=backend)
        counters = _backend_counters(rec)
        assert counters.get(f"kernel.backend.{backend}.edit.invocations", 0) > 0

"""Unit tests for the threshold algorithm helper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ta import threshold_argmin


def make_lists(items_a, items_b):
    return iter(items_a), iter(items_b)


class TestThresholdArgmin:
    def test_finds_global_minimum(self):
        # exact cost = lower bound here (identity aggregation).
        a = [(1.0, "x"), (2.0, "y")]
        b = [(0.5, "z"), (3.0, "w")]
        best, cost = threshold_argmin(*make_lists(a, b), exact_cost={"x": 1.0, "y": 2.0, "z": 0.5, "w": 3.0}.__getitem__)
        assert best == "z"
        assert cost == 0.5

    def test_empty_lists(self):
        assert threshold_argmin(iter([]), iter([]), lambda x: 0.0) is None

    def test_one_empty_list(self):
        best, cost = threshold_argmin(
            iter([(1.0, "a"), (2.0, "b")]), iter([]), exact_cost=lambda x: 5.0 if x == "a" else 6.0
        )
        assert best == "a"

    def test_duplicate_items_evaluated_once(self):
        calls = []

        def cost(item):
            calls.append(item)
            return {"a": 1.0, "b": 2.0}[item]

        a = [(0.0, "a"), (0.5, "b")]
        b = [(0.0, "a"), (1.0, "b")]
        threshold_argmin(*make_lists(a, b), exact_cost=cost)
        assert sorted(set(calls)) == sorted(calls)

    def test_early_stop_skips_tail(self):
        """Once best <= threshold, remaining items must not be evaluated."""
        evaluated = []

        def cost(item):
            evaluated.append(item)
            return float(item)

        # Lower bounds are valid (bound <= exact).  After seeing item 1
        # (cost 1.0), the threshold is 10 + 10, no stop; construct so the
        # cheap item appears early and the bounds then rise sharply.
        a = [(0.5, 1), (50.0, 100)]
        b = [(0.5, 2), (60.0, 200)]
        best, cost_value = threshold_argmin(iter(a), iter(b), cost)
        assert best == 1
        assert 100 not in evaluated or 200 not in evaluated

    def test_exhausting_both_lists_returns_true_min(self, rng):
        for _ in range(20):
            values = {k: float(v) for k, v in enumerate(rng.integers(0, 100, size=10))}
            # Zero lower bounds: TA degenerates to full evaluation but must
            # still return the exact argmin.
            a = [(0.0, k) for k in range(5)]
            b = [(0.0, k) for k in range(5, 10)]
            best, cost = threshold_argmin(iter(a), iter(b), values.__getitem__)
            assert cost == min(values.values())
            assert values[best] == cost


@st.composite
def fagin_instances(draw):
    """Fagin-setting inputs: every item scores in *both* lists, its exact
    cost is the sum of the two scores, and each list is sorted by its own
    score — the setting where the sum-of-heads threshold is a sound bound
    on every unseen item."""
    n = draw(st.integers(min_value=0, max_value=12))
    a_part = [float(draw(st.integers(min_value=0, max_value=6))) for _ in range(n)]
    b_part = [float(draw(st.integers(min_value=0, max_value=6))) for _ in range(n)]
    list_a = sorted((a_part[k], k) for k in range(n))
    list_b = sorted((b_part[k], k) for k in range(n))
    exact = {k: a_part[k] + b_part[k] for k in range(n)}
    return list_a, list_b, exact


@st.composite
def zero_bound_instances(draw):
    """CC's actual regime (see ``_cost_sorted``): every lower bound is 0,
    items live in one list each (possibly all in one — the exhausted-list
    path), and the narrow cost range makes ties common."""
    n = draw(st.integers(min_value=0, max_value=12))
    exact = [float(draw(st.integers(min_value=0, max_value=5))) for _ in range(n)]
    membership = [draw(st.sampled_from(["a", "b"])) for _ in range(n)]
    list_a = [(0.0, k) for k in range(n) if membership[k] == "a"]
    list_b = [(0.0, k) for k in range(n) if membership[k] == "b"]
    return list_a, list_b, dict(enumerate(exact))


class TestThresholdArgminProperty:
    """TA must equal brute-force argmin in both regimes it is sound for."""

    @settings(max_examples=300, deadline=None)
    @given(fagin_instances())
    def test_matches_brute_force_on_fagin_instances(self, case):
        self._assert_exact_argmin(*case)

    @settings(max_examples=300, deadline=None)
    @given(zero_bound_instances())
    def test_matches_brute_force_on_zero_bounds(self, case):
        self._assert_exact_argmin(*case)

    @staticmethod
    def _assert_exact_argmin(list_a, list_b, exact):
        candidates = {k for _b, k in list_a} | {k for _b, k in list_b}
        result = threshold_argmin(iter(list_a), iter(list_b), exact.__getitem__)
        if not candidates:
            assert result is None
            return
        best, cost = result
        assert best in candidates
        assert cost == exact[best]
        assert cost == min(exact[k] for k in candidates)

    @settings(max_examples=200, deadline=None)
    @given(fagin_instances())
    def test_evaluations_are_a_candidate_subset_without_repeats(self, case):
        """Early stopping may skip items but must never evaluate one twice
        or invent one outside the lists."""
        list_a, list_b, exact = case
        evaluated = []

        def cost(item):
            evaluated.append(item)
            return exact[item]

        threshold_argmin(iter(list_a), iter(list_b), cost)
        candidates = {k for _b, k in list_a} | {k for _b, k in list_b}
        assert len(evaluated) == len(set(evaluated))
        assert set(evaluated) <= candidates

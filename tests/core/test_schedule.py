"""Unit tests for the sharing graph and greedy cluster scheduling."""

import numpy as np
import pytest

from repro.core.clusters import Cluster
from repro.core.schedule import greedy_cluster_order, schedule_savings, sharing_graph


def paper_example2_clusters():
    """The five clusters of Example 2 (Section 8).

    C1 = {r2, r3 | s3, s5, s6}, C2 = {r2, r3, r4 | s3, s4},
    C3 = {r5, r6 | s4, s7},     C4 = {r3, r4, r7 | s1, s2},
    C5 = {r1 | s1}.  (1-indexed in the paper; 0-indexed here.)
    """
    def cluster(cid, rows, cols):
        # One entry per (row, col) pair sufficient to induce the page sets.
        entries = tuple((r, cols[k % len(cols)]) for k, r in enumerate(rows)) + tuple(
            (rows[k % len(rows)], c) for k, c in enumerate(cols)
        )
        return Cluster(cid, entries)

    c1 = cluster(0, [1, 2], [2, 4, 5])
    c2 = cluster(1, [1, 2, 3], [2, 3])
    c3 = cluster(2, [4, 5], [3, 6])
    c4 = cluster(3, [2, 3, 6], [0, 1])
    c5 = cluster(4, [0], [0])
    return [c1, c2, c3, c4, c5]


class TestSharingGraph:
    def test_paper_page_totals(self):
        clusters = paper_example2_clusters()
        total = sum(c.num_pages for c in clusters)
        assert total == 21  # Example 2: sum of |C_i| = 21

    def test_edge_weights_symmetric_definition(self):
        clusters = paper_example2_clusters()
        edges = sharing_graph(clusters, "R", "S")
        # C1 & C2 share pages r2, r3, s3 -> weight 3.
        assert edges[(0, 1)] == 3
        # Zero-weight pairs are absent.
        assert (2, 4) not in edges

    def test_weights_match_shared_pages(self):
        clusters = paper_example2_clusters()
        edges = sharing_graph(clusters, "R", "S")
        for (i, j), weight in edges.items():
            assert weight == clusters[i].shared_pages(clusters[j], "R", "S")


class TestGreedyOrder:
    def test_visits_every_cluster_once(self):
        clusters = paper_example2_clusters()
        ordered = greedy_cluster_order(clusters, "R", "S")
        assert sorted(c.cluster_id for c in ordered) == [0, 1, 2, 3, 4]

    def test_beats_paper_scenario1(self):
        """The greedy schedule must save at least as much as Scenario 1
        (21 -> 19 pages, i.e. savings 2); the paper's good schedule
        (Scenario 2) saves 6 (21 -> 15)."""
        clusters = paper_example2_clusters()
        ordered = greedy_cluster_order(clusters, "R", "S")
        savings = schedule_savings(ordered, "R", "S")
        assert savings >= 2
        # Lemma 4: total reads = 21 - savings; greedy should get near 15.
        assert 21 - savings <= 17

    def test_empty(self):
        assert greedy_cluster_order([], "R", "S") == []

    def test_single_cluster(self):
        only = Cluster(0, ((0, 0),))
        assert greedy_cluster_order([only], "R", "S") == [only]

    def test_no_shared_pages_keeps_all(self):
        clusters = [Cluster(k, ((k, k),)) for k in range(4)]
        ordered = greedy_cluster_order(clusters, "R", "S")
        assert sorted(c.cluster_id for c in ordered) == [0, 1, 2, 3]
        assert schedule_savings(ordered, "R", "S") == 0

    def test_deterministic(self, rng):
        clusters = _random_clusters(rng, 12)
        a = greedy_cluster_order(clusters, "R", "S")
        b = greedy_cluster_order(clusters, "R", "S")
        assert [c.cluster_id for c in a] == [c.cluster_id for c in b]

    def test_savings_at_least_random_order_median(self, rng):
        """Lemma 3/4 sanity: the greedy path should beat random schedules."""
        clusters = _random_clusters(rng, 10)
        greedy = schedule_savings(greedy_cluster_order(clusters, "R", "S"), "R", "S")
        random_savings = []
        for _ in range(30):
            perm = rng.permutation(len(clusters))
            random_savings.append(
                schedule_savings([clusters[k] for k in perm], "R", "S")
            )
        assert greedy >= np.median(random_savings)


def _random_clusters(rng, count):
    clusters = []
    for cid in range(count):
        entries = {
            (int(rng.integers(0, 15)), int(rng.integers(0, 15)))
            for _ in range(rng.integers(1, 6))
        }
        clusters.append(Cluster(cid, tuple(sorted(entries))))
    return clusters

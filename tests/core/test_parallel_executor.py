"""Parallel cluster execution: same answer, same simulated I/O as serial.

The executor's contract (ISSUE 1 tentpole): with ``workers > 1`` all
buffer/disk traffic stays on the main thread in serial order, so every
simulated counter — page reads, seeks, buffer hits, io seconds — is
identical to ``workers = 1``, and results merge in schedule order so
even the pairs *list* (not just the set) matches.
"""

import numpy as np
import pytest

from repro.core.clusters import Cluster
from repro.core.executor import execute_clusters
from repro.core.join import IndexedDataset, join
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import VectorPagedDataset


def counting_joiner(row, col, r_payload, s_payload):
    return [(row, col)], 1, len(r_payload) * len(s_payload), 0.001


@pytest.fixture
def datasets():
    r = VectorPagedDataset(
        np.arange(32, dtype=float).reshape(16, 2), objects_per_page=2, dataset_id="R"
    )
    s = VectorPagedDataset(
        np.arange(24, dtype=float).reshape(12, 2), objects_per_page=2, dataset_id="S"
    )
    return r, s


CLUSTERS = [
    Cluster(0, ((0, 0), (0, 1), (1, 0))),
    Cluster(1, ((1, 1), (2, 2))),
    Cluster(2, ((5, 5), (6, 5), (7, 5))),
    Cluster(3, ((3, 3),)),
]


class TestExecutorParallelism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_outcome_identical_to_serial(self, cost_model, datasets, workers):
        r, s = datasets
        serial_disk = SimulatedDisk(cost_model)
        serial = execute_clusters(
            CLUSTERS, BufferPool(serial_disk, 8), r, s, counting_joiner
        )
        parallel_disk = SimulatedDisk(cost_model)
        parallel = execute_clusters(
            CLUSTERS, BufferPool(parallel_disk, 8), r, s, counting_joiner,
            workers=workers,
        )
        assert parallel.pairs == serial.pairs  # order included
        assert parallel.num_pairs == serial.num_pairs
        assert parallel.comparisons == serial.comparisons
        assert parallel.cpu_seconds == serial.cpu_seconds
        assert parallel.pages_read == serial.pages_read
        assert parallel.pages_reused == serial.pages_reused
        assert parallel_disk.stats.transfers == serial_disk.stats.transfers
        assert parallel_disk.stats.seeks == serial_disk.stats.seeks
        assert parallel_disk.stats.buffer_hits == serial_disk.stats.buffer_hits
        assert parallel_disk.stats.io_seconds == serial_disk.stats.io_seconds

    def test_rejects_bad_worker_count(self, disk, datasets):
        r, s = datasets
        with pytest.raises(ValueError):
            execute_clusters([], BufferPool(disk, 8), r, s, counting_joiner, workers=0)

    def test_oversized_cluster_still_rejected(self, disk, datasets):
        r, s = datasets
        too_big = Cluster(0, ((0, 0), (1, 1)))  # 4 pages > 3
        with pytest.raises(ValueError):
            execute_clusters(
                [too_big], BufferPool(disk, 3), r, s, counting_joiner, workers=2
            )


def _report_counters(result):
    rep = result.report
    return (
        rep.page_reads,
        rep.seeks,
        rep.buffer_hits,
        rep.io_seconds,
        rep.cpu_seconds,
        rep.comparisons,
        rep.result_pairs,
    )


class TestJoinParallelism:
    """End-to-end: join(..., workers=k) replays workers=1 exactly."""

    @pytest.mark.parametrize("method", ["sc", "cc", "rand-sc"])
    def test_spatial_join(self, rng, method):
        pts = rng.random((400, 2))
        r = IndexedDataset.from_points(pts, page_capacity=16, dataset_id="PR")
        s = IndexedDataset.from_points(rng.random((300, 2)), page_capacity=16, dataset_id="PS")
        serial = join(r, s, 0.05, method=method, buffer_pages=10, workers=1)
        parallel = join(r, s, 0.05, method=method, buffer_pages=10, workers=3)
        assert parallel.pairs == serial.pairs
        assert _report_counters(parallel) == _report_counters(serial)

    def test_text_join(self):
        rng = np.random.default_rng(7)
        text = "".join(rng.choice(list("ACGT"), size=1500))
        ds = IndexedDataset.from_string(
            text, window_length=12, windows_per_page=64, dataset_id="G"
        )
        serial = join(ds, ds, 2, method="sc", buffer_pages=8, workers=1)
        parallel = join(ds, ds, 2, method="sc", buffer_pages=8, workers=2)
        assert parallel.pairs == serial.pairs
        assert _report_counters(parallel) == _report_counters(serial)

    def test_dtw_join(self, rng):
        seq = rng.normal(size=600).cumsum()
        ds = IndexedDataset.from_time_series(
            seq, window_length=12, windows_per_page=32, dtw_band=2, dataset_id="W"
        )
        serial = join(ds, ds, 0.5, method="sc", buffer_pages=10, workers=1)
        parallel = join(ds, ds, 0.5, method="sc", buffer_pages=10, workers=2)
        assert parallel.pairs == serial.pairs
        assert _report_counters(parallel) == _report_counters(serial)

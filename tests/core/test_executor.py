"""Unit tests for the cluster executor."""

import numpy as np
import pytest

from repro.core.clusters import Cluster
from repro.core.executor import execute_clusters
from repro.storage.buffer import BufferPool
from repro.storage.page import VectorPagedDataset


@pytest.fixture
def datasets():
    r = VectorPagedDataset(
        np.arange(32, dtype=float).reshape(16, 2), objects_per_page=2, dataset_id="R"
    )
    s = VectorPagedDataset(
        np.arange(24, dtype=float).reshape(12, 2), objects_per_page=2, dataset_id="S"
    )
    return r, s


def counting_joiner(row, col, r_payload, s_payload):
    return [(row, col)], 1, len(r_payload) * len(s_payload), 0.001


class TestExecution:
    def test_joins_every_entry(self, disk, datasets):
        r, s = datasets
        pool = BufferPool(disk, capacity=6)
        clusters = [
            Cluster(0, ((0, 0), (0, 1), (1, 0))),
            Cluster(1, ((5, 5), (6, 5))),
        ]
        outcome = execute_clusters(clusters, pool, r, s, counting_joiner)
        assert sorted(outcome.pairs) == [(0, 0), (0, 1), (1, 0), (5, 5), (6, 5)]
        assert outcome.num_pairs == 5
        assert outcome.cpu_seconds == pytest.approx(0.005)

    def test_lemma2_reads_equal_pages(self, disk, datasets):
        """Lemma 2: one batched load of r + c pages joins the cluster."""
        r, s = datasets
        pool = BufferPool(disk, capacity=6)
        cluster = Cluster(0, ((0, 0), (0, 1), (1, 0), (1, 1)))
        outcome = execute_clusters([cluster], pool, r, s, counting_joiner)
        assert outcome.pages_read == cluster.num_pages == 4
        assert disk.stats.transfers == 4

    def test_reuse_between_consecutive_clusters(self, disk, datasets):
        """Lemma 4: shared pages of consecutive clusters are not re-read."""
        r, s = datasets
        pool = BufferPool(disk, capacity=6)
        first = Cluster(0, ((0, 0), (1, 1)))   # pages R0,R1,S0,S1
        second = Cluster(1, ((1, 2), (2, 1)))  # pages R1,R2,S1,S2 — shares R1,S1
        outcome = execute_clusters([first, second], pool, r, s, counting_joiner)
        assert outcome.pages_read == 4 + 2
        assert outcome.pages_reused == 2
        assert outcome.pages_reused == first.shared_pages(second, "R", "S")

    def test_oversized_cluster_rejected(self, disk, datasets):
        r, s = datasets
        pool = BufferPool(disk, capacity=3)
        too_big = Cluster(0, ((0, 0), (1, 1)))  # 4 pages > 3
        with pytest.raises(ValueError):
            execute_clusters([too_big], pool, r, s, counting_joiner)

    def test_self_join_shared_page_counts_once(self, disk, datasets):
        r, _ = datasets
        pool = BufferPool(disk, capacity=6)
        diagonal = Cluster(0, ((2, 2), (2, 3)))
        outcome = execute_clusters([diagonal], pool, r, r, counting_joiner)
        # pages {2, 3} of the single dataset: two physical reads only.
        assert outcome.pages_read == 2

    def test_empty_schedule(self, disk, datasets):
        r, s = datasets
        pool = BufferPool(disk, capacity=6)
        outcome = execute_clusters([], pool, r, s, counting_joiner)
        assert outcome.pairs == []
        assert disk.stats.transfers == 0

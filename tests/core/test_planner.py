"""Tests for the join planner."""

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.core.planner import plan_join


class TestPlanJoin:
    def test_fields_populated(self, vector_pair):
        r, s = vector_pair
        plan = plan_join(r, s, 0.05, buffer_pages=8)
        assert plan.recommended in ("nlj", "pm-nlj", "sc")
        assert set(plan.predicted_reads) == {"nlj", "pm-nlj", "sc"}
        assert all(v >= 0 for v in plan.predicted_reads.values())
        assert 0 <= plan.matrix_density <= 1
        assert "recommend" in plan.describe()

    def test_sc_recommended_under_buffer_pressure(self):
        from repro.datasets import road_intersections

        r = IndexedDataset.from_points(road_intersections(6000, seed=0), page_capacity=32)
        s = IndexedDataset.from_points(road_intersections(4000, seed=1), page_capacity=32)
        plan = plan_join(r, s, 0.01, buffer_pages=8)
        assert plan.recommended == "sc"

    def test_nlj_recommended_for_dense_matrix(self, rng):
        # Tiny uniform data with a huge epsilon: everything joins with
        # everything, the matrix is all-marked, and scanning wins.
        r = IndexedDataset.from_points(rng.random((100, 2)), page_capacity=8)
        s = IndexedDataset.from_points(rng.random((100, 2)), page_capacity=8)
        plan = plan_join(r, s, 2.0, buffer_pages=10)
        assert plan.matrix_density == 1.0
        assert plan.recommended == "nlj"

    def test_prediction_tracks_measurement(self, vector_pair):
        """Predicted SC reads bound the measured reads from above."""
        r, s = vector_pair
        plan = plan_join(r, s, 0.05, buffer_pages=8)
        measured = join(r, s, 0.05, method="sc", buffer_pages=8,
                        count_only=True).report.page_reads
        assert measured <= plan.predicted_reads["sc"]

    def test_self_join_planning(self, rng):
        ds = IndexedDataset.from_points(rng.random((200, 2)), page_capacity=8)
        plan = plan_join(ds, ds, 0.05, buffer_pages=8)
        assert plan.marked_entries > 0

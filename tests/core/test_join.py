"""Unit tests for the top-level join API."""

import numpy as np
import pytest

from repro.core.join import JOIN_METHODS, IndexedDataset, join
from repro.costmodel import CostModel


class TestIndexedDatasetConstruction:
    def test_from_points(self, rng):
        ds = IndexedDataset.from_points(rng.random((100, 3)), page_capacity=16)
        assert ds.kind == "vector"
        assert ds.num_objects == 100
        assert ds.num_pages == ds.index.num_pages

    def test_from_string(self):
        ds = IndexedDataset.from_string("ACGT" * 100, window_length=8, windows_per_page=16)
        assert ds.kind == "text"
        assert ds.features is not None
        assert ds.num_objects == 400 - 8 + 1

    def test_from_time_series(self, rng):
        ds = IndexedDataset.from_time_series(
            rng.normal(size=200).cumsum(), window_length=8, windows_per_page=16
        )
        assert ds.kind == "series"
        assert ds.distance is not None

    def test_paa_requires_euclidean(self, rng):
        with pytest.raises(ValueError):
            IndexedDataset.from_time_series(
                rng.normal(size=200), window_length=8, feature="paa", p=1.0
            )

    def test_full_comparison_weight(self, rng):
        vec = IndexedDataset.from_points(rng.random((50, 2)), page_capacity=16)
        assert vec.full_comparison_weight(0.1) == 1.0
        text = IndexedDataset.from_string("ACGT" * 50, window_length=8, windows_per_page=16)
        assert text.full_comparison_weight(1.0) > 1.0


class TestJoinValidation:
    def test_unknown_method(self, vector_pair):
        r, s = vector_pair
        with pytest.raises(ValueError, match="unknown join method"):
            join(r, s, 0.1, method="hash")

    def test_negative_epsilon(self, vector_pair):
        r, s = vector_pair
        with pytest.raises(ValueError):
            join(r, s, -1.0)

    def test_kind_mismatch(self, vector_pair, dna_dataset):
        r, _ = vector_pair
        with pytest.raises(ValueError, match="kinds"):
            join(r, dna_dataset, 0.1)


class TestJoinBehaviour:
    def test_matches_brute_force(self, rng):
        pts_r = rng.random((120, 2))
        pts_s = rng.random((90, 2))
        r = IndexedDataset.from_points(pts_r, page_capacity=8)
        s = IndexedDataset.from_points(pts_s, page_capacity=8)
        epsilon = 0.1
        result = join(r, s, epsilon, method="sc", buffer_pages=10)

        # Map result global ids (positions in the reordered files) back to
        # original rows and compare against brute force.
        expected = set()
        for i in range(120):
            for j in range(90):
                if np.linalg.norm(pts_r[i] - pts_s[j]) <= epsilon:
                    expected.add((i, j))
        got = {
            (int(r.index.order[a]), int(s.index.order[b])) for a, b in result.pairs
        }
        assert got == expected

    def test_count_only_empty_pairs(self, vector_pair):
        r, s = vector_pair
        with_pairs = join(r, s, 0.05, method="sc", buffer_pages=10)
        counted = join(r, s, 0.05, method="sc", buffer_pages=10, count_only=True)
        assert counted.pairs == []
        assert counted.num_pairs == with_pairs.num_pairs == len(with_pairs.pairs)

    def test_keep_details(self, vector_pair):
        r, s = vector_pair
        result = join(r, s, 0.05, method="sc", buffer_pages=10, keep_details=True)
        assert result.matrix is not None
        assert result.clusters is not None
        assert all(c.fits_in_buffer(10) for c in result.clusters)

    def test_details_absent_by_default(self, vector_pair):
        r, s = vector_pair
        result = join(r, s, 0.05, method="sc", buffer_pages=10)
        assert result.matrix is None and result.clusters is None

    def test_report_fields_consistent(self, vector_pair):
        r, s = vector_pair
        result = join(r, s, 0.05, method="sc", buffer_pages=10)
        report = result.report
        assert report.method == "sc"
        assert report.page_reads > 0
        assert report.io_seconds > 0
        assert report.total_seconds >= report.io_seconds
        assert report.extra["marked_entries"] >= 0

    def test_custom_cost_model_scales_io(self, vector_pair):
        r, s = vector_pair
        cheap = join(r, s, 0.05, method="sc", buffer_pages=10,
                     cost_model=CostModel(seek_s=0.001, transfer_s=0.0001))
        costly = join(r, s, 0.05, method="sc", buffer_pages=10,
                      cost_model=CostModel(seek_s=0.1, transfer_s=0.01))
        assert costly.report.io_seconds > cheap.report.io_seconds
        assert costly.report.page_reads == cheap.report.page_reads

    def test_self_join_pairs_are_canonical(self, rng):
        pts = rng.random((80, 2))
        ds = IndexedDataset.from_points(pts, page_capacity=8)
        result = join(ds, ds, 0.08, method="sc", buffer_pages=10)
        assert all(a < b for a, b in result.pairs)
        assert len(set(result.pairs)) == len(result.pairs)

    def test_rand_sc_seed_changes_order_not_result(self, vector_pair):
        r, s = vector_pair
        a = join(r, s, 0.05, method="rand-sc", buffer_pages=10, seed=1)
        b = join(r, s, 0.05, method="rand-sc", buffer_pages=10, seed=2)
        assert sorted(a.pairs) == sorted(b.pairs)

    def test_sc_never_reads_more_than_pm_nlj(self, vector_pair):
        r, s = vector_pair
        sc = join(r, s, 0.05, method="sc", buffer_pages=8, count_only=True)
        pm = join(r, s, 0.05, method="pm-nlj", buffer_pages=8, count_only=True)
        assert sc.report.page_reads <= pm.report.page_reads

"""Unit tests for the Cluster value type."""

import pytest

from repro.core.clusters import Cluster


class TestCluster:
    def test_rows_cols_derived(self):
        c = Cluster(0, entries=((1, 5), (1, 6), (3, 5)))
        assert c.rows == {1, 3}
        assert c.cols == {5, 6}
        assert c.num_entries == 3
        assert c.num_pages == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cluster(0, entries=())

    def test_fits_in_buffer(self):
        c = Cluster(0, entries=((0, 0), (1, 1)))
        assert c.fits_in_buffer(4)
        assert not c.fits_in_buffer(3)

    def test_page_keys_distinct_datasets(self):
        c = Cluster(0, entries=((1, 1), (2, 3)))
        keys = c.page_keys("R", "S")
        assert keys == {("R", 1), ("R", 2), ("S", 1), ("S", 3)}

    def test_page_keys_self_join_dedup(self):
        c = Cluster(0, entries=((1, 1), (1, 2)))
        keys = c.page_keys("D", "D")
        assert keys == {("D", 1), ("D", 2)}

    def test_shared_pages_definition1(self):
        a = Cluster(0, entries=((1, 5), (2, 6)))
        b = Cluster(1, entries=((2, 7), (3, 5)))
        # shared: row page 2 and column page 5.
        assert a.shared_pages(b, "R", "S") == 2
        assert b.shared_pages(a, "R", "S") == 2

    def test_spans_and_width(self):
        c = Cluster(0, entries=((1, 5), (4, 9)))
        assert c.row_span() == (1, 4)
        assert c.col_span() == (5, 9)
        assert c.width() == 5

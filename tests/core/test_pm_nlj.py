"""Unit tests for pm-NLJ (Figure 4)."""

import numpy as np
import pytest

from repro.core.pm_nlj import pm_nlj_join
from repro.core.prediction import PredictionMatrix
from repro.storage.buffer import BufferPool
from repro.storage.page import VectorPagedDataset


@pytest.fixture
def datasets():
    r = VectorPagedDataset(
        np.arange(40, dtype=float).reshape(20, 2), objects_per_page=2, dataset_id="R"
    )
    s = VectorPagedDataset(
        np.arange(30, dtype=float).reshape(15, 2), objects_per_page=2, dataset_id="S"
    )
    return r, s


def counting_joiner(row, col, r_payload, s_payload):
    return [(row, col)], 1, 1, 0.0


class TestPinnedBranch:
    def test_small_marked_side_pinned(self, disk, datasets):
        """All marked S pages fit: each page of either side read once."""
        r, s = datasets
        pool = BufferPool(disk, capacity=8)
        matrix = PredictionMatrix(10, 15)
        for row, col in [(0, 3), (1, 3), (2, 4), (5, 6)]:
            matrix.mark(row, col)
        outcome = pm_nlj_join(matrix, pool, r, s, counting_joiner)
        # 3 marked cols + 4 marked rows = 7 reads, each exactly once.
        assert disk.stats.transfers == 7
        assert sorted(outcome.pairs) == [(0, 3), (1, 3), (2, 4), (5, 6)]

    def test_empty_matrix_reads_nothing(self, disk, datasets):
        r, s = datasets
        pool = BufferPool(disk, capacity=8)
        outcome = pm_nlj_join(PredictionMatrix(10, 15), pool, r, s, counting_joiner)
        assert disk.stats.transfers == 0
        assert outcome.pairs == []


class TestStreamingBranch:
    def test_lemma1_read_count(self, disk, datasets):
        """When neither side fits, reads = e + min(r, c) exactly."""
        r, s = datasets
        pool = BufferPool(disk, capacity=3)  # forces the streaming branch
        matrix = PredictionMatrix(10, 15)
        entries = [(0, 0), (0, 1), (0, 2), (1, 1), (2, 2), (3, 0), (3, 3)]
        for row, col in entries:
            matrix.mark(row, col)
        e = len(entries)
        marked_rows, marked_cols = 4, 4
        outcome = pm_nlj_join(matrix, pool, r, s, counting_joiner)
        assert disk.stats.transfers == e + min(marked_rows, marked_cols)
        assert sorted(outcome.pairs) == sorted(entries)

    def test_streams_smaller_marked_side(self, disk, datasets):
        r, s = datasets
        pool = BufferPool(disk, capacity=2)  # neither side fits in B - 1 = 1
        matrix = PredictionMatrix(10, 15)
        # 2 marked rows, 5 marked cols: rows become the outer side.
        for col in range(5):
            matrix.mark(0, col)
            matrix.mark(7, col)
        outcome = pm_nlj_join(matrix, pool, r, s, counting_joiner)
        assert disk.stats.transfers == 10 + 2  # e + min(r, c)

    def test_self_join_diagonal_page_reused(self, disk, datasets):
        r, _ = datasets  # R has 10 pages
        pool = BufferPool(disk, capacity=2)
        matrix = PredictionMatrix(10, 10)
        for row in range(5):
            matrix.mark(row, row)      # diagonal entries
            matrix.mark(row, row + 5)  # force the streaming branch
        outcome = pm_nlj_join(matrix, pool, r, r, counting_joiner)
        # Diagonal partners are served from the streamed page itself.
        assert outcome.pages_reused == 5


class TestExampleOne:
    def test_paper_example_1(self, disk):
        """Example 1: 5 marked entries over 3 rows x 2 cols -> 7 reads.

        (Axes follow the paper's count: the iterated side has 2 pages.)
        """
        r = VectorPagedDataset(np.zeros((8, 2)), objects_per_page=2, dataset_id="R")
        s = VectorPagedDataset(np.zeros((8, 2)), objects_per_page=2, dataset_id="S")
        pool = BufferPool(disk, capacity=2)  # too small to pin either side
        matrix = PredictionMatrix(4, 4)
        # 2 marked rows, 3 marked cols, 5 entries.
        for row, col in [(0, 0), (0, 2), (0, 3), (1, 1), (1, 2)]:
            matrix.mark(row, col)
        pm_nlj_join(matrix, pool, r, s, counting_joiner)
        assert disk.stats.transfers == 5 + 2

"""Unit tests for the iterative MBR filter."""

import numpy as np
import pytest

from repro.core.filtering import brinkhoff_filter, iterative_filter
from repro.geometry import Rect


def paper_figure2_children():
    """A layout in the spirit of Figure 2: two node groups, partial overlap."""
    left = [
        Rect([0, 4], [2, 6]),    # R1: far from the overlap
        Rect([1, 1], [3, 3]),    # R2: inside overlap region
        Rect([4, 0], [6, 1.5]),  # R3
        Rect([2, 2], [4, 4]),    # R4: central
        Rect([0, 0], [1, 1]),    # R5: corner
        Rect([5, 4], [6, 6]),    # R6
    ]
    right = [
        Rect([2.5, 2.5], [4.5, 4.5]),  # S1: overlaps R4
        Rect([7, 7], [9, 9]),          # S2: far away
        Rect([3, 1], [5, 2]),          # S3
        Rect([8, 0], [9, 1]),          # S4: far away
        Rect([2, 5], [3, 7]),          # S5
        Rect([6, 6], [7, 8]),          # S6
    ]
    return left, right


class TestCorrectness:
    def test_never_drops_an_intersecting_pair(self, rng):
        """The load-bearing guarantee: filtered-out children cannot
        intersect any child on the other side."""
        for trial in range(30):
            left = [_random_rect(rng) for _ in range(8)]
            right = [_random_rect(rng) for _ in range(8)]
            outcome = iterative_filter(left, right)
            for i, a in enumerate(left):
                for j, b in enumerate(right):
                    if a.intersects(b):
                        assert outcome.keep_left[i], f"dropped left {i} (trial {trial})"
                        assert outcome.keep_right[j], f"dropped right {j} (trial {trial})"

    def test_disjoint_covers_filter_everything(self):
        left = [Rect([0, 0], [1, 1])]
        right = [Rect([5, 5], [6, 6])]
        outcome = iterative_filter(left, right)
        assert not outcome.keep_left.any()
        assert not outcome.keep_right.any()

    def test_empty_inputs(self):
        outcome = iterative_filter([], [Rect([0, 0], [1, 1])])
        assert outcome.surviving_pairs == 0


class TestStrength:
    def test_at_least_as_strong_as_brinkhoff(self, rng):
        for _ in range(30):
            left = [_random_rect(rng) for _ in range(8)]
            right = [_random_rect(rng) for _ in range(8)]
            ours = iterative_filter(left, right, max_rounds=1)
            theirs = brinkhoff_filter(left, right)
            # Anything we keep, Brinkhoff keeps too (we filter a subset).
            assert not np.any(ours.keep_left & ~theirs.keep_left)
            assert not np.any(ours.keep_right & ~theirs.keep_right)

    def test_figure2_style_reduction(self):
        left, right = paper_figure2_children()
        theirs = brinkhoff_filter(left, right)
        ours = iterative_filter(left, right)
        assert ours.surviving_pairs <= theirs.surviving_pairs

    def test_more_rounds_never_weaker(self, rng):
        for _ in range(20):
            left = [_random_rect(rng) for _ in range(6)]
            right = [_random_rect(rng) for _ in range(6)]
            one = iterative_filter(left, right, max_rounds=1)
            five = iterative_filter(left, right, max_rounds=5)
            assert not np.any(five.keep_left & ~one.keep_left)
            assert not np.any(five.keep_right & ~one.keep_right)


class TestTermination:
    def test_round_cap_respected(self, rng):
        left = [_random_rect(rng) for _ in range(10)]
        right = [_random_rect(rng) for _ in range(10)]
        outcome = iterative_filter(left, right, max_rounds=5)
        assert outcome.rounds <= 5

    def test_fixed_point_stops_early(self):
        # Identical boxes: the first round changes nothing beyond clipping.
        boxes = [Rect([0, 0], [1, 1])] * 3
        outcome = iterative_filter(boxes, list(boxes), max_rounds=5)
        assert outcome.rounds < 5
        assert outcome.keep_left.all()

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            iterative_filter([Rect([0, 0], [1, 1])], [Rect([0, 0], [1, 1])], max_rounds=0)


def _random_rect(rng) -> Rect:
    lo = rng.uniform(0, 8, size=2)
    return Rect(lo, lo + rng.uniform(0.2, 3, size=2))

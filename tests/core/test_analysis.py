"""The analytic I/O predictors must match the measured executions."""

import numpy as np
import pytest

from repro.core.analysis import (
    predict_clustered_reads,
    predict_nlj_reads,
    predict_pm_nlj_reads,
)
from repro.core.join import IndexedDataset, join
from repro.core.prediction import PredictionMatrix


@pytest.fixture
def joined(rng):
    r = IndexedDataset.from_points(rng.random((300, 2)), page_capacity=8)
    s = IndexedDataset.from_points(rng.random((250, 2)), page_capacity=8)
    return r, s


class TestNljPrediction:
    def test_matches_measured(self, joined):
        r, s = joined
        for buffer_pages in (4, 8, 16):
            predicted = predict_nlj_reads(r.num_pages, s.num_pages, buffer_pages)
            measured = join(r, s, 0.05, method="nlj", buffer_pages=buffer_pages,
                            count_only=True).report.page_reads
            assert predicted.page_reads == measured

    def test_rejects_tiny_buffer(self):
        with pytest.raises(ValueError):
            predict_nlj_reads(10, 10, 2)


class TestPmNljPrediction:
    def test_matches_measured_streaming(self, joined):
        r, s = joined
        result = join(r, s, 0.05, method="pm-nlj", buffer_pages=2,
                      count_only=True, keep_details=True)
        predicted = predict_pm_nlj_reads(result.matrix, 2)
        assert predicted.page_reads == result.report.page_reads

    def test_matches_measured_pinned(self, joined):
        r, s = joined
        big = max(r.num_pages, s.num_pages) + 2
        result = join(r, s, 0.05, method="pm-nlj", buffer_pages=big,
                      count_only=True, keep_details=True)
        predicted = predict_pm_nlj_reads(result.matrix, big)
        assert predicted.page_reads == result.report.page_reads

    def test_matches_measured_self_join(self, rng):
        ds = IndexedDataset.from_points(rng.random((200, 2)), page_capacity=8)
        for buffer_pages in (2, 100):
            result = join(ds, ds, 0.05, method="pm-nlj", buffer_pages=buffer_pages,
                          count_only=True, keep_details=True)
            predicted = predict_pm_nlj_reads(
                result.matrix, buffer_pages, self_join=True
            )
            assert predicted.page_reads == result.report.page_reads

    def test_empty_matrix(self):
        assert predict_pm_nlj_reads(PredictionMatrix(3, 3), 4).page_reads == 0


class TestClusteredPrediction:
    def test_upper_bounds_measured(self, joined):
        r, s = joined
        result = join(r, s, 0.05, method="sc", buffer_pages=8,
                      count_only=True, keep_details=True)
        predicted = predict_clustered_reads(
            result.clusters, r.paged.dataset_id, s.paged.dataset_id
        )
        # Exact when only consecutive clusters share pages; otherwise the
        # prediction is an upper bound (non-adjacent reuse helps further).
        assert result.report.page_reads <= predicted.page_reads

    def test_prediction_is_lemma2_minus_lemma4(self, joined):
        r, s = joined
        result = join(r, s, 0.05, method="sc", buffer_pages=8,
                      count_only=True, keep_details=True)
        total = sum(c.num_pages for c in result.clusters)
        predicted = predict_clustered_reads(
            result.clusters, r.paged.dataset_id, s.paged.dataset_id
        )
        assert predicted.page_reads <= total

    def test_str_rendering(self, joined):
        r, s = joined
        result = join(r, s, 0.05, method="sc", buffer_pages=8,
                      count_only=True, keep_details=True)
        text = str(predict_clustered_reads(
            result.clusters, r.paged.dataset_id, s.paged.dataset_id
        ))
        assert "Lemma 2" in text and "Lemma 4" in text

"""Sharded process execution: bit-identical to serial, counters included.

The tentpole contract (ISSUE 6): ``join(..., shard_strategy=...)`` runs
worker *processes* over shared-memory page blocks, yet the merged pairs
list, every report counter, and every simulated-I/O recorder counter
match the serial run exactly.  Shard-attributed counters
(``executor.shard.*``) are the only additions, and their per-shard sums
equal the serial totals.
"""

import os

import numpy as np
import pytest

from repro.core.clusters import Cluster
from repro.core.executor import execute_clusters_sharded
from repro.core.join import IndexedDataset, join
from repro.core.planner import SHARD_STRATEGIES, ShardPlan
from repro.core.sharding import resolve_start_method
from repro.obs import (
    BATCHING_VARIANT_COUNTERS,
    SHARDING_VARIANT_COUNTER_PREFIXES,
    InMemoryRecorder,
)
from repro.storage.buffer import BufferPool
from repro.storage.shm import shm_available
from repro.storage.page import VectorPagedDataset

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform without usable shared memory"
)


def _report_counters(result):
    rep = result.report
    return (
        rep.page_reads,
        rep.seeks,
        rep.buffer_hits,
        rep.io_seconds,
        rep.cpu_seconds,
        rep.comparisons,
        rep.result_pairs,
    )


def _stable_counters(recorder):
    """Recorder counters minus the documented per-variant extras."""
    return {
        name: value
        for name, value in recorder.metrics_snapshot()["counters"].items()
        if name not in BATCHING_VARIANT_COUNTERS
        and not name.startswith(SHARDING_VARIANT_COUNTER_PREFIXES)
    }


@pytest.fixture
def spatial():
    rng = np.random.default_rng(12345)
    r = IndexedDataset.from_points(
        rng.random((400, 2)), page_capacity=16, dataset_id="PR"
    )
    s = IndexedDataset.from_points(
        rng.random((300, 2)), page_capacity=16, dataset_id="PS"
    )
    return r, s


class TestJoinSharded:
    @pytest.mark.parametrize("method", ["sc", "cc", "rand-sc"])
    def test_spatial_cross_join(self, spatial, method):
        r, s = spatial
        serial = join(r, s, 0.05, method=method, buffer_pages=10, workers=1)
        sharded = join(
            r, s, 0.05, method=method, buffer_pages=10,
            workers=2, shard_strategy="affinity",
        )
        assert sharded.pairs == serial.pairs  # list order included
        assert _report_counters(sharded) == _report_counters(serial)

    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_text_self_join_all_strategies(self, strategy):
        rng = np.random.default_rng(7)
        text = "".join(rng.choice(list("ACGT"), size=1500))
        ds = IndexedDataset.from_string(
            text, window_length=12, windows_per_page=64, dataset_id="G"
        )
        serial = join(ds, ds, 2, method="sc", buffer_pages=8, workers=1)
        sharded = join(
            ds, ds, 2, method="sc", buffer_pages=8,
            workers=2, shard_strategy=strategy,
        )
        assert sharded.pairs == serial.pairs
        assert _report_counters(sharded) == _report_counters(serial)

    def test_dtw_self_join(self, rng):
        seq = rng.normal(size=600).cumsum()
        ds = IndexedDataset.from_time_series(
            seq, window_length=12, windows_per_page=32, dtw_band=2, dataset_id="W"
        )
        serial = join(ds, ds, 0.5, method="sc", buffer_pages=10, workers=1)
        sharded = join(
            ds, ds, 0.5, method="sc", buffer_pages=10,
            workers=3, shard_strategy="roundrobin",
        )
        assert sharded.pairs == serial.pairs
        assert _report_counters(sharded) == _report_counters(serial)

    def test_per_pair_path(self, spatial):
        """batch_pairs=1 exercises the non-megabatch worker branch."""
        r, s = spatial
        serial = join(r, s, 0.05, method="cc", buffer_pages=10, batch_pairs=1)
        sharded = join(
            r, s, 0.05, method="cc", buffer_pages=10, batch_pairs=1,
            workers=2, shard_strategy="affinity",
        )
        assert sharded.pairs == serial.pairs
        assert _report_counters(sharded) == _report_counters(serial)

    def test_count_only(self, spatial):
        r, s = spatial
        serial = join(r, s, 0.05, method="sc", buffer_pages=10, count_only=True)
        sharded = join(
            r, s, 0.05, method="sc", buffer_pages=10, count_only=True,
            workers=4, shard_strategy="affinity",
        )
        assert sharded.pairs == [] == serial.pairs
        assert sharded.num_pairs == serial.num_pairs
        assert _report_counters(sharded) == _report_counters(serial)

    def test_workers_four(self, spatial):
        r, s = spatial
        serial = join(r, s, 0.05, method="sc", buffer_pages=10)
        sharded = join(
            r, s, 0.05, method="sc", buffer_pages=10,
            workers=4, shard_strategy="affinity",
        )
        assert sharded.pairs == serial.pairs
        assert _report_counters(sharded) == _report_counters(serial)


class TestShardedTelemetry:
    def test_recorder_counters_match_serial(self, spatial):
        r, s = spatial
        serial_rec, sharded_rec = InMemoryRecorder(), InMemoryRecorder()
        serial = join(
            r, s, 0.05, method="sc", buffer_pages=10, recorder=serial_rec
        )
        sharded = join(
            r, s, 0.05, method="sc", buffer_pages=10, recorder=sharded_rec,
            workers=2, shard_strategy="affinity",
        )
        assert sharded.pairs == serial.pairs
        assert _stable_counters(sharded_rec) == _stable_counters(serial_rec)

    def test_per_shard_io_sums_to_totals(self, spatial):
        r, s = spatial
        rec = InMemoryRecorder()
        join(
            r, s, 0.05, method="sc", buffer_pages=10, recorder=rec,
            workers=2, shard_strategy="affinity",
        )
        counters = rec.metrics_snapshot()["counters"]
        shards = counters["executor.shards"]
        assert shards >= 1
        for metric in ("pages_read", "pages_reused", "clusters"):
            total = counters[f"executor.{metric}"]
            split = sum(
                counters[f"executor.shard.{k}.{metric}"] for k in range(shards)
            )
            assert split == total, metric

    def test_worker_spans_merged_with_shard_attr(self, spatial):
        r, s = spatial
        rec = InMemoryRecorder()
        join(
            r, s, 0.05, method="sc", buffer_pages=10, recorder=rec,
            workers=2, shard_strategy="affinity",
        )
        shard_spans = [sp for sp in rec.spans if "shard" in sp.attrs]
        assert shard_spans, "worker spans must fold into the parent recorder"
        assert {sp.attrs["shard"] for sp in shard_spans} <= {0, 1}
        ids = [sp.span_id for sp in rec.spans]
        assert len(set(ids)) == len(ids)

    def test_lemma_audits_stay_clean(self, spatial):
        r, s = spatial
        rec = InMemoryRecorder()
        join(
            r, s, 0.05, method="sc", buffer_pages=10, recorder=rec,
            workers=2, shard_strategy="affinity",
        )
        counters = rec.metrics_snapshot()["counters"]
        violations = [
            name for name in counters if "lemma" in name and "violation" in name
        ]
        assert all(counters[name] == 0 for name in violations)


class TestRandomPartitionsProperty:
    def test_any_partition_reproduces_serial(self, spatial):
        """Property: EVERY partition of the schedule merges to the serial
        pairs list — correctness cannot depend on the planner's choices."""
        r, s = spatial
        serial = join(r, s, 0.05, method="sc", buffer_pages=10)
        # Recover the schedule length from a planned run's shard counters.
        probe = InMemoryRecorder()
        join(
            r, s, 0.05, method="sc", buffer_pages=10, recorder=probe,
            workers=2, shard_strategy="chunk",
        )
        counters = probe.metrics_snapshot()["counters"]
        num_clusters = counters["executor.clusters"]
        rng = np.random.default_rng(99)
        for trial in range(3):
            assignment = rng.integers(0, 3, size=num_clusters)
            members = tuple(
                tuple(int(i) for i in np.flatnonzero(assignment == shard))
                for shard in range(3)
                if np.any(assignment == shard)
            )
            plan = ShardPlan(
                strategy="random",
                shards=members,
                costs=tuple(0 for _ in members),
                duplicated_pages=0,
            )
            sharded = join(
                r, s, 0.05, method="sc", buffer_pages=10,
                workers=len(members), shard_strategy=plan,
            )
            assert sharded.pairs == serial.pairs, f"trial {trial}"
            assert _report_counters(sharded) == _report_counters(serial)


class TestFailureModes:
    def test_plain_callable_joiner_rejected(self, cost_model):
        from repro.storage.disk import SimulatedDisk

        r = VectorPagedDataset(
            np.arange(16, dtype=float).reshape(8, 2),
            objects_per_page=2, dataset_id="R",
        )
        s = VectorPagedDataset(
            np.arange(12, dtype=float).reshape(6, 2),
            objects_per_page=2, dataset_id="S",
        )

        def plain_joiner(row, col, r_payload, s_payload):
            return [(row, col)], 1, 1, 0.0

        pool = BufferPool(SimulatedDisk(cost_model), 8)
        with pytest.raises(ValueError, match="cannot be shipped"):
            execute_clusters_sharded(
                [Cluster(0, ((0, 0),))], pool, r, s, plain_joiner, workers=2
            )

    def test_rejects_bad_worker_count(self, spatial):
        r, s = spatial
        with pytest.raises(ValueError):
            join(r, s, 0.05, buffer_pages=10, workers=0, shard_strategy="chunk")

    def test_spawn_oversubscription_is_a_clear_error(self, monkeypatch):
        import multiprocessing as mp

        monkeypatch.setattr(mp, "get_all_start_methods", lambda: ["spawn"])
        cpus = os.cpu_count() or 1
        with pytest.raises(RuntimeError, match="exceeds os.cpu_count"):
            resolve_start_method(cpus + 1)
        # Within the CPU budget spawn is accepted.
        assert resolve_start_method(1) == "spawn"

    def test_fork_preferred_when_available(self):
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("platform without fork")
        assert resolve_start_method(10_000) == "fork"

    def test_crashed_worker_raises_and_leaks_nothing(
        self, spatial, monkeypatch
    ):
        """A worker dying mid-shard surfaces as RuntimeError and every
        shared segment is still reclaimed by the parent."""
        from pathlib import Path

        shm_dir = Path("/dev/shm")
        before = set(shm_dir.iterdir()) if shm_dir.is_dir() else set()
        monkeypatch.setenv("_REPRO_SHARD_FAULT", "exit")
        r, s = spatial
        with pytest.raises(RuntimeError, match="shard worker"):
            join(
                r, s, 0.05, method="sc", buffer_pages=10,
                workers=2, shard_strategy="affinity",
            )
        if shm_dir.is_dir():
            leaked = {
                p for p in set(shm_dir.iterdir()) - before
                if p.name.startswith("psm_")
            }
            assert leaked == set()

    def test_empty_schedule(self, cost_model):
        from repro.core.joiners import NumericPagePairJoiner
        from repro.distance.vector import MinkowskiDistance
        from repro.storage.disk import SimulatedDisk

        r = VectorPagedDataset(
            np.arange(16, dtype=float).reshape(8, 2),
            objects_per_page=2, dataset_id="R",
        )
        joiner = NumericPagePairJoiner(
            r, r, MinkowskiDistance(2), 0.1, cost_model, True
        )
        pool = BufferPool(SimulatedDisk(cost_model), 8)
        outcome = execute_clusters_sharded([], pool, r, r, joiner, workers=2)
        assert outcome.pairs == []
        assert outcome.pages_read == 0

"""Unit tests for square clustering (SC)."""

import numpy as np
import pytest

from repro.core.prediction import PredictionMatrix
from repro.core.square import square_clustering


def random_matrix(rng, rows=30, cols=30, density=0.1):
    m = PredictionMatrix(rows, cols)
    mask = rng.random((rows, cols)) < density
    for r, c in zip(*np.nonzero(mask)):
        m.mark(int(r), int(c))
    if m.num_marked == 0:
        m.mark(0, 0)
    return m


class TestPartitionProperties:
    def test_every_entry_in_exactly_one_cluster(self, rng):
        for _ in range(10):
            matrix = random_matrix(rng)
            clusters, _ = square_clustering(matrix, buffer_pages=8)
            seen = [entry for cluster in clusters for entry in cluster.entries]
            assert sorted(seen) == sorted(matrix.entries())
            assert len(seen) == len(set(seen))

    def test_source_matrix_unmodified(self, rng):
        matrix = random_matrix(rng)
        before = matrix.num_marked
        square_clustering(matrix, buffer_pages=8)
        assert matrix.num_marked == before

    def test_clusters_fit_buffer(self, rng):
        for buffer_pages in (2, 4, 8, 16):
            matrix = random_matrix(rng, density=0.2)
            clusters, _ = square_clustering(matrix, buffer_pages=buffer_pages)
            for cluster in clusters:
                assert cluster.fits_in_buffer(buffer_pages), (
                    f"cluster {cluster} exceeds B={buffer_pages}"
                )

    def test_cluster_ids_sequential(self, rng):
        clusters, _ = square_clustering(random_matrix(rng), buffer_pages=8)
        assert [c.cluster_id for c in clusters] == list(range(len(clusters)))


class TestShape:
    def test_dense_matrix_yields_square_clusters(self):
        """On a fully dense region, SC should produce r = c = B/2 clusters."""
        matrix = PredictionMatrix(10, 10)
        for r in range(10):
            for c in range(10):
                matrix.mark(r, c)
        clusters, _ = square_clustering(matrix, buffer_pages=10)
        # The first (non-boundary) clusters are 5x5.
        big = [c for c in clusters if c.num_entries == 25]
        assert big, "expected at least one full 5x5 cluster"
        for cluster in big:
            assert len(cluster.rows) == 5
            assert len(cluster.cols) == 5

    def test_single_row_matrix(self):
        matrix = PredictionMatrix(1, 40)
        for c in range(40):
            matrix.mark(0, c)
        clusters, _ = square_clustering(matrix, buffer_pages=6)
        for cluster in clusters:
            assert len(cluster.rows) == 1
            assert cluster.num_pages <= 6

    def test_single_column_matrix(self):
        matrix = PredictionMatrix(40, 1)
        for r in range(40):
            matrix.mark(r, 0)
        clusters, _ = square_clustering(matrix, buffer_pages=6)
        seen = sorted(e for c in clusters for e in c.entries)
        assert seen == [(r, 0) for r in range(40)]

    def test_aspect_parameter(self, rng):
        matrix = random_matrix(rng, density=0.3)
        square, _ = square_clustering(matrix, buffer_pages=12, target_aspect=1.0)
        skewed, _ = square_clustering(matrix, buffer_pages=12, target_aspect=3.0)
        mean_rows_square = np.mean([len(c.rows) for c in square])
        mean_rows_skewed = np.mean([len(c.rows) for c in skewed])
        assert mean_rows_skewed >= mean_rows_square


class TestEdgeCases:
    def test_rejects_tiny_buffer(self):
        with pytest.raises(ValueError):
            square_clustering(PredictionMatrix(2, 2), buffer_pages=1)

    def test_rejects_bad_aspect(self):
        with pytest.raises(ValueError):
            square_clustering(PredictionMatrix(2, 2), buffer_pages=4, target_aspect=0)

    def test_empty_matrix(self):
        clusters, stats = square_clustering(PredictionMatrix(5, 5), buffer_pages=4)
        assert clusters == []
        assert stats.clusters_built == 0

    def test_single_entry(self):
        matrix = PredictionMatrix(5, 5)
        matrix.mark(3, 3)
        clusters, _ = square_clustering(matrix, buffer_pages=4)
        assert len(clusters) == 1
        assert clusters[0].entries == ((3, 3),)

    def test_minimum_buffer_two(self):
        matrix = PredictionMatrix(3, 3)
        for k in range(3):
            matrix.mark(k, k)
        clusters, _ = square_clustering(matrix, buffer_pages=2)
        assert sum(c.num_entries for c in clusters) == 3
        for cluster in clusters:
            assert cluster.num_pages <= 2

    def test_stats_counted(self, rng):
        _clusters, stats = square_clustering(random_matrix(rng), buffer_pages=8)
        assert stats.entries_scanned > 0
        assert stats.columns_scanned > 0
        assert stats.total_operations > 0

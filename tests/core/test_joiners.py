"""Unit tests for the page-pair join kernels."""

import numpy as np
import pytest

from repro.core.joiners import make_numeric_joiner, make_text_joiner, text_dp_weight
from repro.costmodel import CostModel
from repro.distance.edit import edit_distance
from repro.distance.frequency import frequency_vectors_sliding
from repro.distance.vector import EuclideanDistance
from repro.storage.page import SequencePagedDataset, VectorPagedDataset


@pytest.fixture
def model():
    return CostModel(cpu_compare_s=1e-6)


class TestNumericJoiner:
    @pytest.fixture
    def pair(self, rng):
        r = VectorPagedDataset(rng.random((20, 2)), objects_per_page=5, dataset_id="R")
        s = VectorPagedDataset(rng.random((15, 2)), objects_per_page=5, dataset_id="S")
        return r, s

    def test_finds_exact_pairs(self, pair, model):
        r, s = pair
        joiner = make_numeric_joiner(r, s, EuclideanDistance(), 0.3, model, False)
        pairs, count, comparisons, cpu = joiner(1, 2, r.page_objects(1), s.page_objects(2))
        assert count == len(pairs)
        assert comparisons == 25
        assert cpu == pytest.approx(25e-6)
        for gid_r, gid_s in pairs:
            d = np.linalg.norm(r.vectors[gid_r] - s.vectors[gid_s])
            assert d <= 0.3

    def test_global_ids_offset_by_page(self, pair, model):
        r, s = pair
        joiner = make_numeric_joiner(r, s, EuclideanDistance(), 10.0, model, False)
        pairs, _count, _cmp, _cpu = joiner(2, 1, r.page_objects(2), s.page_objects(1))
        assert {gid_r for gid_r, _ in pairs} == set(range(10, 15))
        assert {gid_s for _, gid_s in pairs} == set(range(5, 10))

    def test_self_join_diagonal_strict_upper(self, pair, model):
        r, _ = pair
        joiner = make_numeric_joiner(r, r, EuclideanDistance(), 10.0, model, True)
        pairs, count, _cmp, _cpu = joiner(0, 0, r.page_objects(0), r.page_objects(0))
        assert count == 10  # C(5, 2) pairs, no self matches
        for a, b in pairs:
            assert a < b

    def test_count_only_mode(self, pair, model):
        r, s = pair
        joiner = make_numeric_joiner(
            r, s, EuclideanDistance(), 10.0, model, False, collect_pairs=False
        )
        pairs, count, _cmp, _cpu = joiner(0, 0, r.page_objects(0), s.page_objects(0))
        assert pairs == []
        assert count == 25


class TestTextJoiner:
    @pytest.fixture
    def dataset(self):
        from repro.datasets import markov_dna

        text = markov_dna(800, seed=4)
        ds = SequencePagedDataset(text, symbols_per_page=20, window_length=12, dataset_id="G")
        features = frequency_vectors_sliding(text, 12)
        return ds, features

    def test_matches_brute_force(self, dataset, model):
        ds, features = dataset
        epsilon = 1
        joiner = make_text_joiner(ds, ds, features, features, epsilon, model, False)
        for page_r, page_s in [(0, 5), (3, 3), (7, 20)]:
            pairs, count, _cmp, _cpu = joiner(
                page_r, page_s, ds.page_objects(page_r), ds.page_objects(page_s)
            )
            expected = set()
            r_start, r_stop = ds.window_range(page_r)
            s_start, s_stop = ds.window_range(page_s)
            text = ds.sequence
            for p in range(r_start, r_stop):
                for q in range(s_start, s_stop):
                    if edit_distance(text[p : p + 12], text[q : q + 12], max_dist=1) <= epsilon:
                        expected.add((p, q))
            assert set(pairs) == expected
            assert count == len(expected)

    def test_brute_force_epsilon_two(self, dataset, model):
        """eps >= 2 exercises the DP fallback behind the Hamming filter."""
        ds, features = dataset
        joiner = make_text_joiner(ds, ds, features, features, 2, model, False)
        page_r, page_s = 1, 9
        pairs, _count, _cmp, _cpu = joiner(
            page_r, page_s, ds.page_objects(page_r), ds.page_objects(page_s)
        )
        text = ds.sequence
        expected = set()
        r_start, r_stop = ds.window_range(page_r)
        s_start, s_stop = ds.window_range(page_s)
        for p in range(r_start, r_stop):
            for q in range(s_start, s_stop):
                if edit_distance(text[p : p + 12], text[q : q + 12], max_dist=2) <= 2:
                    expected.add((p, q))
        assert set(pairs) == expected

    def test_self_join_diagonal(self, dataset, model):
        ds, features = dataset
        joiner = make_text_joiner(ds, ds, features, features, 1, model, True)
        pairs, _count, _cmp, _cpu = joiner(2, 2, ds.page_objects(2), ds.page_objects(2))
        for p, q in pairs:
            assert p < q

    def test_dp_weight_scales(self):
        assert text_dp_weight(500, 5) > text_dp_weight(50, 5)
        assert text_dp_weight(100, 5) > text_dp_weight(100, 1)

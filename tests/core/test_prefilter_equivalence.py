"""Exact-mode prefilter equivalence: ``prefilter="exact"`` may only
*reorder* each cluster's cascade, so a join with it must be
observationally identical to ``prefilter=None`` — pairs (order
included), every simulated cost field, every semantic counter — across
joiner kinds, worker counts, and serial vs process-sharded execution.
Only the ``prefilter.*`` counters (which exist solely with the
prefilter on) and the batching/sharding kernel-shape counters may
differ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.datasets import markov_dna
from repro.obs import (
    BACKEND_VARIANT_COUNTER_PREFIXES,
    BATCHING_VARIANT_COUNTERS,
    PREFILTER_VARIANT_COUNTER_PREFIXES,
    SHARDING_VARIANT_COUNTER_PREFIXES,
    InMemoryRecorder,
)
from repro.sketch.config import PrefilterConfig


def _semantic_counters(recorder: InMemoryRecorder) -> dict:
    counters = recorder.metrics_snapshot()["counters"]
    return {
        name: value
        for name, value in counters.items()
        if name not in BATCHING_VARIANT_COUNTERS
        and not name.startswith(SHARDING_VARIANT_COUNTER_PREFIXES)
        and not name.startswith(PREFILTER_VARIANT_COUNTER_PREFIXES)
        and not name.startswith(BACKEND_VARIANT_COUNTER_PREFIXES)
    }


def _run(r, s, epsilon, *, prefilter, workers=1, shard_strategy=None, **kwargs):
    rec = InMemoryRecorder()
    result = join(
        r, s, epsilon, method="sc", buffer_pages=10, workers=workers,
        shard_strategy=shard_strategy, prefilter=prefilter, recorder=rec,
        **kwargs,
    )
    return result, rec


def _assert_identical(baseline, candidate):
    """Bit-identical observable behaviour between two join runs."""
    base_result, base_rec = baseline
    cand_result, cand_rec = candidate
    assert cand_result.pairs == base_result.pairs
    br, cr = base_result.report, cand_result.report
    assert cr.result_pairs == br.result_pairs
    assert cr.comparisons == br.comparisons
    assert cr.cpu_seconds == br.cpu_seconds
    assert cr.io_seconds == br.io_seconds
    assert cr.page_reads == br.page_reads
    assert cr.seeks == br.seeks
    assert cr.buffer_hits == br.buffer_hits
    assert cr.extra["pages_reused"] == br.extra["pages_reused"]
    assert _semantic_counters(cand_rec) == _semantic_counters(base_rec)


@pytest.fixture(scope="module")
def series_pair():
    rng = np.random.default_rng(7)
    walk = np.cumsum(rng.normal(size=600))
    r = IndexedDataset.from_time_series(walk, window_length=16, windows_per_page=32)
    s = IndexedDataset.from_time_series(
        walk[100:500] + rng.normal(scale=0.05, size=400),
        window_length=16,
        windows_per_page=32,
    )
    return r, s


@pytest.fixture(scope="module")
def dtw_pair():
    rng = np.random.default_rng(11)
    walk = np.cumsum(rng.normal(size=500))
    r = IndexedDataset.from_time_series(
        walk, window_length=12, windows_per_page=24, dtw_band=2
    )
    s = IndexedDataset.from_time_series(
        walk[50:450] + rng.normal(scale=0.05, size=400),
        window_length=12,
        windows_per_page=24,
        dtw_band=2,
    )
    return r, s


@pytest.fixture(scope="module")
def text_pair():
    r = IndexedDataset.from_string(
        markov_dna(1200, seed=5), window_length=8, windows_per_page=24
    )
    s = IndexedDataset.from_string(
        markov_dna(900, seed=6), window_length=8, windows_per_page=24
    )
    return r, s


class TestExactModeIdentity:
    """Every joiner kind × workers × serial/sharded, vs prefilter=None."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_vector_join(self, vector_pair, workers):
        r, s = vector_pair
        baseline = _run(r, s, 0.05, prefilter=None, workers=workers)
        exact = _run(r, s, 0.05, prefilter="exact", workers=workers)
        _assert_identical(baseline, exact)
        assert baseline[0].num_pairs > 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_series_join(self, series_pair, workers):
        r, s = series_pair
        baseline = _run(r, s, 0.5, prefilter=None, workers=workers)
        exact = _run(r, s, 0.5, prefilter="exact", workers=workers)
        _assert_identical(baseline, exact)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_dtw_join(self, dtw_pair, workers):
        r, s = dtw_pair
        baseline = _run(r, s, 0.6, prefilter=None, workers=workers)
        exact = _run(r, s, 0.6, prefilter="exact", workers=workers)
        _assert_identical(baseline, exact)
        assert baseline[0].num_pairs > 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_text_join(self, text_pair, workers):
        r, s = text_pair
        baseline = _run(r, s, 1.0, prefilter=None, workers=workers)
        exact = _run(r, s, 1.0, prefilter="exact", workers=workers)
        _assert_identical(baseline, exact)

    @pytest.mark.parametrize("shard_strategy", ["affinity", "chunk"])
    def test_sharded_vector_join(self, vector_pair, shard_strategy):
        r, s = vector_pair
        baseline = _run(r, s, 0.05, prefilter=None)
        exact = _run(
            r, s, 0.05, prefilter="exact", workers=2,
            shard_strategy=shard_strategy,
        )
        _assert_identical(baseline, exact)

    def test_sharded_text_join(self, text_pair):
        r, s = text_pair
        baseline = _run(r, s, 1.0, prefilter=None)
        exact = _run(
            r, s, 1.0, prefilter="exact", workers=2, shard_strategy="affinity"
        )
        _assert_identical(baseline, exact)

    def test_self_join(self, vector_pair):
        r, _ = vector_pair
        baseline = _run(r, r, 0.03, prefilter=None)
        exact = _run(r, r, 0.03, prefilter="exact")
        _assert_identical(baseline, exact)
        assert all(a < b for a, b in exact[0].pairs)

    def test_per_pair_path_identity(self, vector_pair):
        # batch_pairs=1 exercises the wrapper's __call__ delegation: the
        # per-pair path must not be reordered (entry order drives buffer
        # recency), so it stays identical by *not* touching the order.
        r, s = vector_pair
        baseline = _run(r, s, 0.05, prefilter=None, batch_pairs=1)
        exact = _run(r, s, 0.05, prefilter="exact", batch_pairs=1)
        _assert_identical(baseline, exact)

    def test_exact_config_object(self, vector_pair):
        r, s = vector_pair
        baseline = _run(r, s, 0.05, prefilter=None)
        exact = _run(
            r, s, 0.05, prefilter=PrefilterConfig(mode="exact", num_hashes=4)
        )
        _assert_identical(baseline, exact)

    def test_subsequence_join_forwards_prefilter(self):
        from repro.sequence.subjoin import subsequence_join

        dna = markov_dna(2500, seed=7)
        kwargs = dict(
            window_length=24, epsilon=1, method="sc",
            buffer_pages=16, windows_per_page=32,
        )
        baseline = subsequence_join(dna, None, **kwargs)
        exact = subsequence_join(dna, None, prefilter="exact", **kwargs)
        assert sorted(exact.offsets) == sorted(baseline.offsets)
        assert exact.report.page_reads == baseline.report.page_reads
        assert exact.report.extra["prefilter"]["cells_unmarked"] == 0
        approx = subsequence_join(
            dna, None, prefilter=PrefilterConfig(recall_target=0.99), **kwargs
        )
        assert set(approx.offsets) <= set(baseline.offsets)


class TestPrefilterValidation:
    def test_rejected_for_competitor_methods(self, vector_pair):
        r, s = vector_pair
        with pytest.raises(ValueError, match="prefilter"):
            join(r, s, 0.05, method="nlj", buffer_pages=10, prefilter="exact")

    def test_rejected_for_unknown_mode(self, vector_pair):
        r, s = vector_pair
        with pytest.raises(ValueError, match="prefilter"):
            join(r, s, 0.05, buffer_pages=10, prefilter="fuzzy")

    def test_rejected_for_wrong_type(self, vector_pair):
        r, s = vector_pair
        with pytest.raises(TypeError, match="prefilter"):
            join(r, s, 0.05, buffer_pages=10, prefilter=42)


class TestPrefilterTelemetry:
    def test_prefilter_counters_and_span_present(self, vector_pair):
        r, s = vector_pair
        result, rec = _run(r, s, 0.05, prefilter="exact")
        counters = rec.metrics_snapshot()["counters"]
        assert counters["prefilter.cells_scored"] > 0
        assert counters["prefilter.cells_unmarked"] == 0
        assert counters["prefilter.sketch_builds"] == 2
        spans = [s.name for s in rec.spans]
        assert "join.prefilter" in spans
        stage_seconds = result.report.extra["stage_seconds"]
        assert stage_seconds["prefilter"] > 0.0
        info = result.report.extra["prefilter"]
        assert info["mode"] == "exact"
        assert info["cells_unmarked"] == 0
        assert info["est_recall"] == 1.0

    def test_no_prefilter_keys_without_prefilter(self, vector_pair):
        r, s = vector_pair
        result, rec = _run(r, s, 0.05, prefilter=None)
        counters = rec.metrics_snapshot()["counters"]
        assert not any(k.startswith("prefilter.") for k in counters)
        assert "prefilter" not in result.report.extra
        assert result.report.extra["stage_seconds"]["prefilter"] == 0.0

    def test_sharded_reorder_counter_merges_to_serial_total(self, vector_pair):
        # prefilter.* counters are NOT sharding-variant: each worker
        # reports its shard's reordered clusters and the parent's merge
        # must sum to the serial total.
        r, s = vector_pair
        _, serial_rec = _run(r, s, 0.05, prefilter="exact")
        _, sharded_rec = _run(
            r, s, 0.05, prefilter="exact", workers=2, shard_strategy="affinity"
        )
        serial = serial_rec.metrics_snapshot()["counters"]
        sharded = sharded_rec.metrics_snapshot()["counters"]
        assert serial["prefilter.reordered_clusters"] > 0
        assert (
            sharded["prefilter.reordered_clusters"]
            == serial["prefilter.reordered_clusters"]
        )
        # Parent-side planning counters are unaffected by sharding too.
        for name in ("prefilter.cells_scored", "prefilter.cells_unmarked"):
            assert sharded[name] == serial[name]

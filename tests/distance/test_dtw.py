"""Unit tests for banded DTW and its envelope lower bounds."""

import numpy as np
import pytest

from repro.distance.dtw import DTWDistance, dtw_distance, envelope, envelope_box
from repro.geometry import Rect


def brute_dtw(a, b, band):
    """Reference banded DTW via the full quadratic DP."""
    n, m = len(a), len(b)
    big = float("inf")
    dp = [[big] * (m + 1) for _ in range(n + 1)]
    dp[0][0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if abs(i - j) > band:
                continue
            cost = (a[i - 1] - b[j - 1]) ** 2
            dp[i][j] = cost + min(dp[i - 1][j], dp[i][j - 1], dp[i - 1][j - 1])
    return np.sqrt(dp[n][m])


class TestDtwDistance:
    def test_identical_is_zero(self):
        x = np.array([1.0, 2.0, 3.0])
        assert dtw_distance(x, x, band=1) == 0.0

    def test_band_zero_is_euclidean(self, rng):
        a = rng.normal(size=12)
        b = rng.normal(size=12)
        assert dtw_distance(a, b, band=0) == pytest.approx(np.linalg.norm(a - b))

    def test_warping_beats_euclidean(self):
        a = np.array([0.0, 0.0, 1.0, 0.0, 0.0])
        b = np.array([0.0, 1.0, 0.0, 0.0, 0.0])  # same spike, shifted by one
        assert dtw_distance(a, b, band=1) < np.linalg.norm(a - b)

    def test_matches_brute_force(self, rng):
        for _ in range(30):
            a = rng.normal(size=10)
            b = rng.normal(size=10)
            for band in (0, 1, 3):
                assert dtw_distance(a, b, band) == pytest.approx(
                    brute_dtw(a, b, band)
                )

    def test_early_abandon_semantics(self, rng):
        for _ in range(30):
            a = rng.normal(size=10)
            b = rng.normal(size=10)
            true = brute_dtw(a, b, 2)
            for limit in (0.5, 2.0, 5.0):
                banded = dtw_distance(a, b, 2, max_dist=limit)
                assert (banded <= limit) == (true <= limit)

    def test_length_gap_beyond_band(self):
        assert dtw_distance([1.0], [1.0, 1.0, 1.0], band=1, max_dist=5) == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            dtw_distance([1.0], [1.0], band=-1)
        with pytest.raises(ValueError):
            dtw_distance([], [1.0], band=1)


class TestEnvelope:
    def test_band_zero_identity(self, rng):
        values = rng.normal(size=10)
        lower, upper = envelope(values, 0)
        assert np.array_equal(lower, values)
        assert np.array_equal(upper, values)

    def test_running_extremes(self):
        values = np.array([0.0, 5.0, 1.0, 3.0])
        lower, upper = envelope(values, 1)
        assert np.array_equal(lower, [0, 0, 1, 1])
        assert np.array_equal(upper, [5, 5, 5, 3])

    def test_contains_original(self, rng):
        values = rng.normal(size=20)
        for band in (1, 3, 10):
            lower, upper = envelope(values, band)
            assert np.all(lower <= values)
            assert np.all(values <= upper)

    def test_monotone_in_band(self, rng):
        values = rng.normal(size=20)
        l1, u1 = envelope(values, 1)
        l3, u3 = envelope(values, 3)
        assert np.all(l3 <= l1)
        assert np.all(u3 >= u1)


class TestEnvelopeBoxSoundness:
    def test_envelope_box_widens(self, rng):
        lo = rng.normal(size=8)
        box = Rect(lo, lo + 1.0)
        widened = envelope_box(box, 2)
        assert widened.contains_rect(box)

    def test_box_test_lower_bounds_dtw(self, rng):
        """Windows within DTW eps must have widened boxes within L∞ eps."""
        band = 2
        for _ in range(40):
            group_a = rng.normal(size=(4, 10))
            group_b = rng.normal(size=(4, 10))
            box_a = envelope_box(Rect(group_a.min(0), group_a.max(0)), band)
            box_b = envelope_box(Rect(group_b.min(0), group_b.max(0)), band)
            box_gap = box_a.min_dist(box_b, p=float("inf"))
            true_min = min(
                dtw_distance(a, b, band) for a in group_a for b in group_b
            )
            assert box_gap <= true_min + 1e-9


class TestDTWJoinDistance:
    def test_pairs_within_matches_brute(self, rng):
        d = DTWDistance(band=2)
        left = rng.normal(size=(10, 8))
        right = rng.normal(size=(8, 8))
        eps = 1.5
        expected = {
            (i, j)
            for i in range(10)
            for j in range(8)
            if brute_dtw(left[i], right[j], 2) <= eps
        }
        assert set(d.pairs_within(left, right, eps)) == expected

    def test_keogh_filter_never_loses(self, rng):
        """The envelope pre-filter must be a true lower bound."""
        d = DTWDistance(band=3)
        left = rng.normal(size=(6, 12))
        right = rng.normal(size=(6, 12))
        for eps in (0.5, 2.0, 4.0):
            got = set(d.pairs_within(left, right, eps))
            expected = {
                (i, j)
                for i in range(6)
                for j in range(6)
                if brute_dtw(left[i], right[j], 3) <= eps
            }
            assert got == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            DTWDistance(band=-1)
        with pytest.raises(ValueError):
            DTWDistance(band=1).pairs_within(np.zeros((1, 4)), np.zeros((1, 4)), -1)


class TestDTWThroughJoinAPI:
    def test_end_to_end_dtw_join(self, rng):
        from repro.core.join import IndexedDataset, join

        seq = rng.normal(size=400).cumsum()
        ds = IndexedDataset.from_time_series(
            seq, window_length=12, windows_per_page=16, dtw_band=2
        )
        result = join(ds, ds, 0.5, method="sc", buffer_pages=10)
        # Verify against brute force over all window pairs.
        windows = np.lib.stride_tricks.sliding_window_view(seq, 12)
        expected = {
            (p, q)
            for p in range(windows.shape[0])
            for q in range(p + 1, windows.shape[0])
            if brute_dtw(windows[p], windows[q], 2) <= 0.5
        }
        assert set(result.pairs) == expected

    def test_dtw_methods_agree(self, rng):
        from repro.core.join import IndexedDataset, join

        seq = rng.normal(size=300).cumsum()
        ds = IndexedDataset.from_time_series(
            seq, window_length=10, windows_per_page=16, dtw_band=1
        )
        reference = None
        for method in ("nlj", "pm-nlj", "sc", "ego", "bfrj"):
            result = join(ds, ds, 0.4, method=method, buffer_pages=10)
            if reference is None:
                reference = sorted(result.pairs)
            assert sorted(result.pairs) == reference, method

"""Unit tests for Minkowski distances."""

import math

import numpy as np
import pytest

from repro.distance.vector import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
)


class TestScalar:
    def test_euclidean(self):
        assert EuclideanDistance().distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan(self):
        assert ManhattanDistance().distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert ChebyshevDistance().distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_p_three(self):
        d = MinkowskiDistance(3.0)
        assert d.distance([0], [2]) == pytest.approx(2.0)

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            MinkowskiDistance(0.5)
        with pytest.raises(ValueError):
            MinkowskiDistance(float("nan"))


class TestPairwise:
    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0, float("inf")])
    def test_matches_scalar(self, p, rng):
        left = rng.normal(size=(7, 4))
        right = rng.normal(size=(5, 4))
        d = MinkowskiDistance(p)
        matrix = d.pairwise(left, right)
        for i in range(7):
            for j in range(5):
                assert matrix[i, j] == pytest.approx(d.distance(left[i], right[j]))

    def test_euclidean_fast_path_is_stable(self, rng):
        # The dot-product trick must not produce NaN on identical points.
        pts = rng.normal(size=(6, 3))
        matrix = EuclideanDistance().pairwise(pts, pts)
        assert np.all(np.isfinite(matrix))
        assert np.allclose(np.diag(matrix), 0.0, atol=1e-9)


class TestPairsWithin:
    def test_brute_force_agreement(self, rng):
        left = rng.random((30, 3))
        right = rng.random((25, 3))
        d = EuclideanDistance()
        expected = {
            (i, j)
            for i in range(30)
            for j in range(25)
            if d.distance(left[i], right[j]) <= 0.4
        }
        assert set(d.pairs_within(left, right, 0.4)) == expected

    def test_chunking_boundary(self, rng):
        # Force multiple chunks through the module's chunk size.
        import repro.distance.vector as vec

        old = vec._CHUNK_ROWS
        vec._CHUNK_ROWS = 8
        try:
            left = rng.random((20, 2))
            right = rng.random((10, 2))
            d = EuclideanDistance()
            chunked = set(d.pairs_within(left, right, 0.3))
        finally:
            vec._CHUNK_ROWS = old
        unchunked = set(d.pairs_within(left, right, 0.3))
        assert chunked == unchunked

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            EuclideanDistance().pairs_within(np.zeros((1, 2)), np.zeros((1, 2)), -0.1)

    def test_zero_epsilon_exact_matches(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        pairs = EuclideanDistance().pairs_within(pts, pts.copy(), 0.0)
        assert set(pairs) == {(0, 0), (1, 1)}

    def test_comparison_weight_is_unit(self):
        assert EuclideanDistance().comparison_weight == 1.0

"""Unit tests for frequency vectors and the frequency distance."""

import numpy as np
import pytest

from repro.distance.edit import edit_distance
from repro.distance.frequency import (
    frequency_distance,
    frequency_vector,
    frequency_vectors_sliding,
)


class TestFrequencyVector:
    def test_counts(self):
        vec = frequency_vector("ACGTAA")
        assert np.array_equal(vec, [3, 1, 1, 1])

    def test_custom_alphabet(self):
        vec = frequency_vector("abba", alphabet="ab")
        assert np.array_equal(vec, [2, 2])

    def test_rejects_unknown_symbol(self):
        with pytest.raises(ValueError):
            frequency_vector("ACGX")

    def test_rejects_duplicate_alphabet(self):
        with pytest.raises(ValueError):
            frequency_vector("AA", alphabet="AA")


class TestSlidingVectors:
    def test_matches_per_window(self):
        s = "ACGTACGGTA"
        w = 4
        sliding = frequency_vectors_sliding(s, w)
        assert sliding.shape == (7, 4)
        for k in range(7):
            assert np.array_equal(sliding[k], frequency_vector(s[k : k + w]))

    def test_rejects_short_sequence(self):
        with pytest.raises(ValueError):
            frequency_vectors_sliding("ACG", 4)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            frequency_vectors_sliding("ACGT", 0)


class TestFrequencyDistance:
    def test_identical_is_zero(self):
        u = frequency_vector("ACGT")
        assert frequency_distance(u, u) == 0.0

    def test_known_value(self):
        # AAAA -> AATT: two substitutions; FD = max(2, 2) = 2.
        u = frequency_vector("AAAA")
        v = frequency_vector("AATT")
        assert frequency_distance(u, v) == 2.0

    def test_symmetry(self, rng):
        for _ in range(20):
            u = rng.integers(0, 10, size=4).astype(float)
            v = rng.integers(0, 10, size=4).astype(float)
            assert frequency_distance(u, v) == frequency_distance(v, u)

    def test_lower_bounds_edit_distance(self, rng):
        """The MRS-index soundness property: FD <= ED for all string pairs."""
        alphabet = "ACGT"
        for _ in range(100):
            s = "".join(alphabet[k] for k in rng.integers(0, 4, size=8))
            t = "".join(alphabet[k] for k in rng.integers(0, 4, size=8))
            fd = frequency_distance(frequency_vector(s), frequency_vector(t))
            assert fd <= edit_distance(s, t)

    def test_dominates_linf(self, rng):
        """FD >= L_inf of the frequency vectors (used by the box test)."""
        for _ in range(50):
            u = rng.integers(0, 12, size=4).astype(float)
            v = rng.integers(0, 12, size=4).astype(float)
            assert frequency_distance(u, v) >= np.abs(u - v).max()

"""Unit tests for edit distance."""

import pytest

from repro.distance.edit import EditDistance, edit_distance


def brute_levenshtein(s: str, t: str) -> int:
    """Textbook full-matrix DP for cross-checking."""
    n, m = len(s), len(t)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = 0 if s[i - 1] == t[j - 1] else 1
            dp[i][j] = min(dp[i - 1][j] + 1, dp[i][j - 1] + 1, dp[i - 1][j - 1] + cost)
    return dp[n][m]


class TestEditDistance:
    @pytest.mark.parametrize(
        "s,t,expected",
        [
            ("", "", 0),
            ("A", "", 1),
            ("", "ACGT", 4),
            ("ACGT", "ACGT", 0),
            ("ACGT", "AGGT", 1),
            ("ACGT", "TGCA", 4),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
        ],
    )
    def test_known_values(self, s, t, expected):
        assert edit_distance(s, t) == expected

    def test_symmetry(self):
        assert edit_distance("ACCT", "AGT") == edit_distance("AGT", "ACCT")

    def test_matches_brute_force_randomised(self, rng):
        alphabet = "ACGT"
        for _ in range(60):
            s = "".join(alphabet[k] for k in rng.integers(0, 4, size=rng.integers(0, 12)))
            t = "".join(alphabet[k] for k in rng.integers(0, 4, size=rng.integers(0, 12)))
            assert edit_distance(s, t) == brute_levenshtein(s, t)


class TestBandedEarlyAbandon:
    def test_exact_when_within_bound(self):
        assert edit_distance("kitten", "sitting", max_dist=3) == 3

    def test_exceeding_bound_returns_sentinel(self):
        assert edit_distance("AAAA", "TTTT", max_dist=2) == 3  # max_dist + 1

    def test_length_gap_shortcut(self):
        assert edit_distance("A", "AAAAAA", max_dist=2) == 3

    def test_threshold_semantics_match_full_dp(self, rng):
        alphabet = "ACGT"
        for _ in range(60):
            s = "".join(alphabet[k] for k in rng.integers(0, 4, size=10))
            t = "".join(alphabet[k] for k in rng.integers(0, 4, size=10))
            true = brute_levenshtein(s, t)
            for limit in (0, 1, 2, 5):
                banded = edit_distance(s, t, max_dist=limit)
                assert (banded <= limit) == (true <= limit)
                if true <= limit:
                    assert banded == true


class TestEditDistanceJoinAdapter:
    def test_pairs_within(self):
        d = EditDistance(window_length=4)
        left = ["ACGT", "AAAA"]
        right = ["ACGA", "TTTT", "AAAT"]
        pairs = set(d.pairs_within(left, right, epsilon=1))
        assert pairs == {(0, 0), (1, 2)}

    def test_weight_grows_with_window(self):
        assert (
            EditDistance(window_length=100).comparison_weight
            > EditDistance(window_length=10).comparison_weight
        )

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            EditDistance(window_length=0)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            EditDistance(window_length=4).pairs_within(["A"], ["A"], -1)

"""Property-based tests (hypothesis) for the core invariants.

Each property is one of the paper's stated guarantees:

* Theorem 1 — prediction-matrix completeness;
* FD ≤ ED — the MRS lower-bound chain;
* SC/CC partition correctness and buffer fit (Lemma 2 precondition);
* schedule validity (Lemma 3) and savings accounting (Lemma 4);
* the iterative filter never drops an intersecting pair;
* LRU buffer-pool semantics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import Cluster
from repro.core.filtering import iterative_filter
from repro.core.join import IndexedDataset, join
from repro.core.prediction import PredictionMatrix
from repro.core.schedule import greedy_cluster_order, schedule_savings
from repro.core.square import square_clustering
from repro.distance.edit import edit_distance
from repro.distance.frequency import frequency_distance, frequency_vector
from repro.geometry import Rect

# -- strategies --------------------------------------------------------------

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=24)

small_floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def rects(draw, dim=2):
    lo = np.asarray([draw(small_floats) for _ in range(dim)])
    extent = np.asarray(
        [draw(st.floats(min_value=0, max_value=50, allow_nan=False)) for _ in range(dim)]
    )
    return Rect(lo, lo + extent)


@st.composite
def sparse_matrices(draw):
    rows = draw(st.integers(min_value=1, max_value=20))
    cols = draw(st.integers(min_value=1, max_value=20))
    matrix = PredictionMatrix(rows, cols)
    entries = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=rows - 1),
                st.integers(min_value=0, max_value=cols - 1),
            ),
            min_size=1,
            max_size=60,
        )
    )
    for r, c in entries:
        matrix.mark(r, c)
    return matrix


# -- distance lower bounds -----------------------------------------------------


@given(dna_strings, dna_strings)
def test_frequency_distance_lower_bounds_edit(s, t):
    fd = frequency_distance(frequency_vector(s), frequency_vector(t))
    assert fd <= edit_distance(s, t)


@given(dna_strings, dna_strings)
def test_edit_distance_is_a_metric_on_samples(s, t):
    d = edit_distance(s, t)
    assert d == edit_distance(t, s)
    assert (d == 0) == (s == t)
    assert d <= max(len(s), len(t))


@given(dna_strings, dna_strings, dna_strings)
@settings(max_examples=50)
def test_edit_distance_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


# -- geometry -------------------------------------------------------------------


@given(rects(), rects(), st.floats(min_value=0, max_value=10, allow_nan=False))
def test_extension_intersection_equals_linf_mindist(a, b, eps):
    by_extension = a.extend(eps / 2).intersects(b.extend(eps / 2))
    by_mindist = a.min_dist(b, p=float("inf")) <= eps
    assert by_extension == by_mindist


@given(rects(), rects())
def test_mindist_monotone_in_p(a, b):
    assert a.min_dist(b, p=float("inf")) <= a.min_dist(b, p=2.0) + 1e-9
    assert a.min_dist(b, p=2.0) <= a.min_dist(b, p=1.0) + 1e-9


# -- filtering --------------------------------------------------------------------


@given(
    st.lists(rects(), min_size=1, max_size=8),
    st.lists(rects(), min_size=1, max_size=8),
)
@settings(max_examples=60)
def test_filter_preserves_intersecting_pairs(left, right):
    outcome = iterative_filter(left, right)
    for i, a in enumerate(left):
        for j, b in enumerate(right):
            if a.intersects(b):
                assert outcome.keep_left[i]
                assert outcome.keep_right[j]


# -- clustering --------------------------------------------------------------------


@given(sparse_matrices(), st.integers(min_value=2, max_value=12))
@settings(max_examples=60)
def test_square_clustering_partitions_and_fits(matrix, buffer_pages):
    clusters, _ = square_clustering(matrix, buffer_pages)
    seen = sorted(e for c in clusters for e in c.entries)
    assert seen == sorted(matrix.entries())
    for cluster in clusters:
        assert cluster.num_pages <= buffer_pages


@given(sparse_matrices(), st.integers(min_value=2, max_value=12))
@settings(max_examples=30)
def test_cost_clustering_partitions_and_fits(matrix, buffer_pages):
    from repro.core.costcluster import cost_clustering

    clusters, _ = cost_clustering(
        matrix, buffer_pages, lambda rows, cols: float(len(rows) + len(cols))
    )
    seen = sorted(e for c in clusters for e in c.entries)
    assert seen == sorted(matrix.entries())
    for cluster in clusters:
        assert cluster.num_pages <= buffer_pages


@given(sparse_matrices(), st.integers(min_value=2, max_value=12))
@settings(max_examples=30)
def test_schedule_is_a_permutation_with_nonnegative_savings(matrix, buffer_pages):
    clusters, _ = square_clustering(matrix, buffer_pages)
    ordered = greedy_cluster_order(clusters, "R", "S")
    assert sorted(c.cluster_id for c in ordered) == sorted(
        c.cluster_id for c in clusters
    )
    assert schedule_savings(ordered, "R", "S") >= 0


# -- end-to-end completeness -------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
)
@settings(max_examples=15, deadline=None)
def test_join_matches_brute_force(seed, epsilon):
    rng = np.random.default_rng(seed)
    pts_r = rng.random((60, 2))
    pts_s = rng.random((40, 2))
    r = IndexedDataset.from_points(pts_r, page_capacity=8)
    s = IndexedDataset.from_points(pts_s, page_capacity=8)
    result = join(r, s, epsilon, method="sc", buffer_pages=8)
    got = {(int(r.index.order[a]), int(s.index.order[b])) for a, b in result.pairs}
    expected = {
        (i, j)
        for i in range(60)
        for j in range(40)
        if float(np.sqrt(((pts_r[i] - pts_s[j]) ** 2).sum())) <= epsilon
    }
    assert got == expected

"""Vectorized block sweep vs. brute force and vs. the reference sweep.

The prediction matrix is defined point-wise: page pair ``(i, j)`` is
marked iff the L∞ box distance between the two page MBRs is at most ε
(equivalently, the ε/2-extended boxes intersect).  The block sweep must
reproduce exactly that set on *any* hierarchy — including ε = 0, boxes
that touch exactly at distance ε, and duplicate coordinates that stress
the sorted-search tie handling — and must additionally match the frozen
reference implementation counter for counter.
"""

import numpy as np
import pytest

from repro.core.join import IndexedDataset
from repro.core.sweep import SweepStats, block_sweep_pairs, build_prediction_matrix
from repro.core.sweep_reference import build_prediction_matrix_reference
from repro.geometry import BoxArray, Rect


def brute_force_marks(index_r, index_s, epsilon):
    """All-pairs L∞ ``min_dist <= eps`` over the page MBRs."""
    dists = index_r.leaf_bounds().min_dist_matrix(index_s.leaf_bounds(), p=float("inf"))
    rows, cols = np.nonzero(dists <= epsilon)
    return set(zip(rows.tolist(), cols.tolist()))


def spatial_dataset(rng, n, d, page_capacity=8, duplicates=False, integer_grid=False):
    pts = rng.random((n, d))
    if integer_grid:
        # Small-integer coordinates: extended boxes touch *exactly* at
        # epsilon multiples, and coordinates repeat across points.
        pts = np.floor(pts * 6)
    if duplicates:
        # Repeat a block of points so leaf boxes share identical edges.
        pts[n // 2 :] = pts[: n - n // 2]
    return IndexedDataset.from_points(pts, page_capacity=page_capacity)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("d", [1, 2, 5])
    @pytest.mark.parametrize("epsilon", [0.0, 0.05, 0.3])
    def test_rstar_hierarchies(self, rng, d, epsilon):
        r = spatial_dataset(rng, 150, d)
        s = spatial_dataset(rng, 130, d)
        matrix, _ = build_prediction_matrix(
            r.index.root, s.index.root, epsilon, r.num_pages, s.num_pages
        )
        assert set(matrix.entries()) == brute_force_marks(r.index, s.index, epsilon)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, 2.0])
    def test_touching_boxes_and_duplicate_coordinates(self, rng, epsilon):
        """Integer grids make ε-extended boxes touch exactly; duplicates
        make endpoint ties ubiquitous in the sorted sweep order."""
        r = spatial_dataset(rng, 120, 2, duplicates=True, integer_grid=True)
        s = spatial_dataset(rng, 120, 2, duplicates=True, integer_grid=True)
        matrix, _ = build_prediction_matrix(
            r.index.root, s.index.root, epsilon, r.num_pages, s.num_pages
        )
        assert set(matrix.entries()) == brute_force_marks(r.index, s.index, epsilon)

    @pytest.mark.parametrize("epsilon", [0.0, 0.5, 2.0])
    def test_mr_index_hierarchies(self, rng, epsilon):
        """Sequence-window hierarchies (MR-index) sweep identically."""
        series_r = rng.normal(size=700).cumsum()
        series_s = rng.normal(size=600).cumsum()
        r = IndexedDataset.from_time_series(series_r, window_length=8, windows_per_page=32)
        s = IndexedDataset.from_time_series(series_s, window_length=8, windows_per_page=32)
        matrix, _ = build_prediction_matrix(
            r.index.root, s.index.root, epsilon, r.num_pages, s.num_pages
        )
        assert set(matrix.entries()) == brute_force_marks(r.index, s.index, epsilon)

    def test_self_join_hierarchy(self, rng):
        ds = spatial_dataset(rng, 160, 3)
        matrix, _ = build_prediction_matrix(
            ds.index.root, ds.index.root, 0.1, ds.num_pages, ds.num_pages
        )
        assert set(matrix.entries()) == brute_force_marks(ds.index, ds.index, 0.1)


class TestAgainstReference:
    """Marks must be set-identical and SweepStats counter-identical."""

    @pytest.mark.parametrize("max_filter_rounds", [0, 1, 5])
    @pytest.mark.parametrize("d,epsilon", [(2, 0.1), (2, 0.0), (5, 0.4), (16, 1.0)])
    def test_marks_and_stats_identical(self, rng, d, epsilon, max_filter_rounds):
        r = spatial_dataset(rng, 200, d)
        s = spatial_dataset(rng, 180, d)
        got, got_stats = build_prediction_matrix(
            r.index.root, s.index.root, epsilon, r.num_pages, s.num_pages,
            max_filter_rounds=max_filter_rounds,
        )
        want, want_stats = build_prediction_matrix_reference(
            r.index.root, s.index.root, epsilon, r.num_pages, s.num_pages,
            max_filter_rounds=max_filter_rounds,
        )
        assert got == want
        assert got_stats == want_stats

    def test_duplicate_coordinates_stats_identical(self, rng):
        r = spatial_dataset(rng, 140, 2, duplicates=True, integer_grid=True)
        s = spatial_dataset(rng, 140, 2, duplicates=True, integer_grid=True)
        got, got_stats = build_prediction_matrix(
            r.index.root, s.index.root, 1.0, r.num_pages, s.num_pages
        )
        want, want_stats = build_prediction_matrix_reference(
            r.index.root, s.index.root, 1.0, r.num_pages, s.num_pages
        )
        assert got == want
        assert got_stats == want_stats


class TestBlockSweepPairs:
    def test_matches_intersects_matrix(self, rng):
        """The dimension-0 search + remaining-dims mask finds each
        intersecting pair exactly once."""
        for _ in range(20):
            left = BoxArray(
                lo := rng.uniform(0, 5, size=(12, 3)), lo + rng.uniform(0, 2, size=(12, 3))
            )
            right = BoxArray(
                lo2 := rng.uniform(0, 5, size=(10, 3)), lo2 + rng.uniform(0, 2, size=(10, 3))
            )
            i, j = block_sweep_pairs(left, right)
            got = sorted(zip(i.tolist(), j.tolist()))
            assert len(got) == len(set(got)), "pair emitted twice"
            want = sorted(zip(*map(list, np.nonzero(left.intersects_matrix(right)))))
            assert got == want

    def test_intersection_tests_counts_dim0_overlaps(self, rng):
        """Documented counter definition: one test per pair overlapping in
        dimension 0, exactly what the event sweep used to count."""
        lo_l = rng.uniform(0, 5, size=(15, 2))
        lo_r = rng.uniform(0, 5, size=(11, 2))
        left = BoxArray(lo_l, lo_l + rng.uniform(0, 2, size=(15, 2)))
        right = BoxArray(lo_r, lo_r + rng.uniform(0, 2, size=(11, 2)))
        stats = SweepStats()
        block_sweep_pairs(left, right, stats)
        dim0_overlaps = int(
            np.sum(
                (left.lo[:, None, 0] <= right.hi[None, :, 0])
                & (right.lo[None, :, 0] <= left.hi[:, None, 0])
            )
        )
        assert stats.intersection_tests == dim0_overlaps
        assert stats.endpoints_processed == 2 * (15 + 11)

"""Property-based tests for the newer subsystems.

Covers invariants not in test_invariants.py: pm-NLJ's analytic read-count
prediction vs simulation, paging partitions, DTW envelope soundness, and
Morton code determinism/locality.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.zorder import morton_codes
from repro.core.analysis import predict_pm_nlj_reads
from repro.core.pm_nlj import pm_nlj_join
from repro.core.prediction import PredictionMatrix
from repro.distance.dtw import dtw_distance, envelope
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import SequencePagedDataset, VectorPagedDataset

# -- strategies ---------------------------------------------------------------


@st.composite
def matrices_with_buffer(draw):
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=12))
    matrix = PredictionMatrix(rows, cols)
    entries = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=rows - 1),
                st.integers(min_value=0, max_value=cols - 1),
            ),
            min_size=1,
            max_size=40,
        )
    )
    for r, c in entries:
        matrix.mark(r, c)
    buffer_pages = draw(st.integers(min_value=2, max_value=30))
    return matrix, buffer_pages


# -- pm-NLJ prediction == simulation ---------------------------------------------


@given(matrices_with_buffer())
@settings(max_examples=60, deadline=None)
def test_pm_nlj_prediction_matches_simulation(case):
    matrix, buffer_pages = case
    r_ds = VectorPagedDataset(
        np.zeros((matrix.num_rows, 1)), objects_per_page=1, dataset_id="R"
    )
    s_ds = VectorPagedDataset(
        np.zeros((matrix.num_cols, 1)), objects_per_page=1, dataset_id="S"
    )
    disk = SimulatedDisk()
    pool = BufferPool(disk, buffer_pages)
    noop = lambda row, col, pr, ps: ([], 0, 0, 0.0)
    pm_nlj_join(matrix, pool, r_ds, s_ds, noop)
    predicted = predict_pm_nlj_reads(matrix, buffer_pages)
    assert predicted.page_reads == disk.stats.transfers


# -- paging partitions ---------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=50),
)
def test_vector_pages_partition_objects(num_objects, per_page):
    ds = VectorPagedDataset(np.zeros((num_objects, 2)), objects_per_page=per_page)
    covered = []
    for page in range(ds.num_pages):
        start, stop = ds.page_slice(page)
        covered.extend(range(start, stop))
        for local in range(stop - start):
            gid = ds.global_object_id(page, local)
            assert ds.page_of_object(gid) == page
    assert covered == list(range(num_objects))


@given(
    st.integers(min_value=2, max_value=120),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=10),
)
def test_sequence_pages_partition_windows(seq_len, per_page, window):
    if seq_len < window:
        return
    ds = SequencePagedDataset(
        np.zeros(seq_len), symbols_per_page=per_page, window_length=window
    )
    covered = []
    for page in range(ds.num_pages):
        start, stop = ds.window_range(page)
        assert stop > start
        covered.extend(range(start, stop))
    assert covered == list(range(ds.num_windows))


# -- DTW envelope soundness ------------------------------------------------------


@given(
    st.lists(st.floats(min_value=-10, max_value=10), min_size=4, max_size=12),
    st.lists(st.floats(min_value=-10, max_value=10), min_size=4, max_size=12),
    st.integers(min_value=0, max_value=4),
)
@settings(max_examples=80)
def test_keogh_bound_below_dtw(xs, ys, band):
    if len(xs) != len(ys):
        return
    x = np.asarray(xs)
    y = np.asarray(ys)
    lower, upper = envelope(y, band)
    gap = np.maximum(np.maximum(lower - x, 0.0), np.maximum(x - upper, 0.0))
    keogh = float(np.sqrt(np.sum(gap * gap)))
    assert keogh <= dtw_distance(x, y, band) + 1e-9


@given(
    st.lists(st.floats(min_value=-10, max_value=10), min_size=3, max_size=10),
    st.integers(min_value=0, max_value=3),
)
def test_dtw_bounded_by_euclidean(xs, band):
    x = np.asarray(xs)
    y = x[::-1].copy()
    euclid = float(np.sqrt(np.sum((x - y) ** 2)))
    assert dtw_distance(x, y, band) <= euclid + 1e-9


# -- Morton codes -----------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40)
def test_morton_codes_shift_invariant_order(n, dim, seed):
    """Translating the whole dataset must not change the Z-order."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, dim))
    base = morton_codes(pts, 0.1)
    shifted = morton_codes(pts + 5.0, 0.1)
    assert np.array_equal(np.argsort(base, kind="stable"),
                          np.argsort(shifted, kind="stable"))

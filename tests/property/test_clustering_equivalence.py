"""Vectorized clustering pipeline vs. the frozen scalar reference.

The CSR work-matrix implementations of SC, CC and the sharing-graph
scheduler must be *bit-identical* to the reference implementations in
:mod:`repro.core.clusters_reference`: same cluster assignments in the
same growth order, same stats counters, same sharing-graph weights and
same greedy schedules — on random matrices of varying shape, density,
buffer size and aspect ratio, and on the degenerate single-row /
single-column shapes where the column sweep and the rectangle growth hit
their boundary branches.
"""

import numpy as np
import pytest

from repro.core.clusters import Cluster
from repro.core.clusters_reference import (
    cost_clustering_reference,
    greedy_cluster_order_reference,
    sharing_graph_reference,
    square_clustering_reference,
)
from repro.core.costcluster import LinearDiskModelCost, cost_clustering
from repro.core.prediction import PredictionMatrix
from repro.core.schedule import greedy_cluster_order, schedule_savings, sharing_graph
from repro.core.square import square_clustering
from repro.costmodel import DEFAULT_COST_MODEL


def random_matrix(rng, num_rows, num_cols, density):
    """A random sparse prediction matrix with at least one marked entry."""
    matrix = PredictionMatrix(num_rows, num_cols)
    mask = rng.random((num_rows, num_cols)) < density
    rows, cols = np.nonzero(mask)
    if rows.size == 0:
        rows = np.asarray([int(rng.integers(num_rows))])
        cols = np.asarray([int(rng.integers(num_cols))])
    matrix.mark_many(rows, cols)
    return matrix


def assert_clusters_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.cluster_id == w.cluster_id
        assert g.entries == w.entries


def linear_disk_closure(row_blocks, col_blocks, model):
    """The set-based page cost the reference evaluates, block for block.

    Mirrors ``SimulatedDisk.cost_of_read_set``: dedupe the physical
    blocks, sort, charge one seek per run.
    """

    def page_set_cost(rows, cols):
        blocks = sorted(
            {int(row_blocks[r]) for r in rows} | {int(col_blocks[c]) for c in cols}
        )
        if not blocks:
            return 0.0
        seeks = 1 + sum(1 for prev, cur in zip(blocks, blocks[1:]) if cur != prev + 1)
        return model.io_cost(transfers=len(blocks), seeks=seeks)

    return page_set_cost


SHAPES = [
    (1, 1, 1.0),
    (1, 24, 0.5),  # single row: phase 1 picks it immediately
    (24, 1, 0.5),  # single column: every cluster is that column
    (8, 8, 0.8),
    (20, 20, 0.15),
    (30, 12, 0.3),
    (12, 30, 0.3),
    (40, 40, 0.05),
]


class TestSquareClusteringEquivalence:
    @pytest.mark.parametrize("num_rows,num_cols,density", SHAPES)
    @pytest.mark.parametrize("buffer_pages", [2, 3, 7, 16])
    def test_random_matrices(self, rng, num_rows, num_cols, density, buffer_pages):
        matrix = random_matrix(rng, num_rows, num_cols, density)
        got, got_stats = square_clustering(matrix, buffer_pages)
        want, want_stats = square_clustering_reference(matrix, buffer_pages)
        assert_clusters_identical(got, want)
        assert got_stats == want_stats

    @pytest.mark.parametrize("target_aspect", [0.25, 0.5, 1.0, 2.0, 4.0])
    def test_aspect_ratios(self, rng, target_aspect):
        matrix = random_matrix(rng, 25, 25, 0.2)
        got, got_stats = square_clustering(matrix, 9, target_aspect=target_aspect)
        want, want_stats = square_clustering_reference(
            matrix, 9, target_aspect=target_aspect
        )
        assert_clusters_identical(got, want)
        assert got_stats == want_stats

    def test_matrix_not_mutated(self, rng):
        matrix = random_matrix(rng, 15, 15, 0.3)
        before = list(matrix.entries())
        square_clustering(matrix, 6)
        assert list(matrix.entries()) == before

    def test_every_entry_in_exactly_one_cluster(self, rng):
        matrix = random_matrix(rng, 20, 20, 0.25)
        clusters, _ = square_clustering(matrix, 8)
        seen = [e for c in clusters for e in c.entries]
        assert sorted(seen) == sorted(matrix.entries())
        assert len(seen) == len(set(seen))


class TestCostClusteringEquivalence:
    @pytest.mark.parametrize("num_rows,num_cols,density", SHAPES)
    @pytest.mark.parametrize("buffer_pages", [2, 5, 12])
    def test_generic_callback(self, rng, num_rows, num_cols, density, buffer_pages):
        """Any plain (rows, cols) -> float callback: both sides call it."""
        matrix = random_matrix(rng, num_rows, num_cols, density)

        def page_set_cost(rows, cols):
            return float(len(rows) + 2 * len(cols))

        got, got_stats = cost_clustering(
            matrix, buffer_pages, page_set_cost, rng=np.random.default_rng(7)
        )
        want, want_stats = cost_clustering_reference(
            matrix, buffer_pages, page_set_cost, rng=np.random.default_rng(7)
        )
        assert_clusters_identical(got, want)
        assert got_stats == want_stats

    @pytest.mark.parametrize("num_rows,num_cols,density", SHAPES)
    @pytest.mark.parametrize("col_base_offset", [0, 1000])
    def test_incremental_disk_model(
        self, rng, num_rows, num_cols, density, col_base_offset
    ):
        """The incremental LinearDiskModelCost path vs. the reference fed
        the equivalent set-based closure.  ``col_base_offset=0`` overlays
        both extents on the same blocks (the self-join layout)."""
        matrix = random_matrix(rng, num_rows, num_cols, density)
        row_blocks = np.arange(num_rows, dtype=np.int64)
        col_blocks = col_base_offset + np.arange(num_cols, dtype=np.int64)
        spec = LinearDiskModelCost(row_blocks, col_blocks, DEFAULT_COST_MODEL)
        closure = linear_disk_closure(row_blocks, col_blocks, DEFAULT_COST_MODEL)
        for buffer_pages in (2, 6, 14):
            got, got_stats = cost_clustering(
                matrix, buffer_pages, spec, rng=np.random.default_rng(3)
            )
            want, want_stats = cost_clustering_reference(
                matrix, buffer_pages, closure, rng=np.random.default_rng(3)
            )
            assert_clusters_identical(got, want)
            assert got_stats == want_stats

    @pytest.mark.parametrize("histogram_bins", [1, 4, 32])
    def test_histogram_bins_and_default_rng(self, rng, histogram_bins):
        matrix = random_matrix(rng, 18, 22, 0.2)

        def page_set_cost(rows, cols):
            return float(len(set(rows) | {c + 100 for c in cols}))

        got, got_stats = cost_clustering(
            matrix, 8, page_set_cost, histogram_bins=histogram_bins
        )
        want, want_stats = cost_clustering_reference(
            matrix, 8, page_set_cost, histogram_bins=histogram_bins
        )
        assert_clusters_identical(got, want)
        assert got_stats == want_stats

    def test_matrix_not_mutated(self, rng):
        matrix = random_matrix(rng, 12, 12, 0.3)
        before = list(matrix.entries())
        cost_clustering(matrix, 6, lambda rows, cols: float(len(rows) + len(cols)))
        assert list(matrix.entries()) == before


def random_clusters(rng, count, page_space=30):
    clusters = []
    for cid in range(count):
        n = int(rng.integers(1, 10))
        entries = tuple(
            sorted(
                {
                    (int(r), int(c))
                    for r, c in zip(
                        rng.integers(0, page_space, size=n),
                        rng.integers(0, page_space, size=n),
                    )
                }
            )
        )
        clusters.append(Cluster(cluster_id=cid, entries=entries))
    return clusters


class TestSharingGraphEquivalence:
    @pytest.mark.parametrize("count", [0, 1, 2, 7, 20])
    @pytest.mark.parametrize("self_join", [False, True])
    def test_graph_and_order_identical(self, rng, count, self_join):
        clusters = random_clusters(rng, count)
        r_id = "d0"
        s_id = "d0" if self_join else "d1"
        assert sharing_graph(clusters, r_id, s_id) == sharing_graph_reference(
            clusters, r_id, s_id
        )
        got = greedy_cluster_order(clusters, r_id, s_id)
        want = greedy_cluster_order_reference(clusters, r_id, s_id)
        assert [c.cluster_id for c in got] == [c.cluster_id for c in want]
        assert schedule_savings(got, r_id, s_id) == schedule_savings(want, r_id, s_id)

    def test_disjoint_clusters_keep_creation_order(self):
        clusters = [
            Cluster(cluster_id=0, entries=((0, 0),)),
            Cluster(cluster_id=1, entries=((5, 5),)),
            Cluster(cluster_id=2, entries=((9, 9),)),
        ]
        ordered = greedy_cluster_order(clusters, "r", "s")
        assert [c.cluster_id for c in ordered] == [0, 1, 2]
        assert sharing_graph(clusters, "r", "s") == {}

    def test_self_join_dedupes_row_col_page(self):
        """In a self join a page marked as both row and column is one
        physical page, so it contributes 1 (not 2) to the edge weight."""
        a = Cluster(cluster_id=0, entries=((3, 3),))
        b = Cluster(cluster_id=1, entries=((3, 7), (7, 3)))
        assert sharing_graph([a, b], "d", "d") == {(0, 1): 1}
        assert sharing_graph([a, b], "d", "other") == {(0, 1): 2}


class TestEndToEndPipelineEquivalence:
    def test_sc_plus_schedule_identical(self, rng):
        matrix = random_matrix(rng, 30, 30, 0.12)
        got_clusters, _ = square_clustering(matrix, 10)
        want_clusters, _ = square_clustering_reference(matrix, 10)
        got = greedy_cluster_order(got_clusters, "r", "s")
        want = greedy_cluster_order_reference(want_clusters, "r", "s")
        assert [c.entries for c in got] == [c.entries for c in want]

"""End-to-end tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestGenerate:
    def test_roads_npy(self, tmp_path, capsys):
        out = tmp_path / "roads.npy"
        assert main(["generate", "roads", "--n", "500", "--out", str(out)]) == 0
        data = np.load(out)
        assert data.shape == (500, 2)
        assert "wrote 500" in capsys.readouterr().out

    def test_landsat_csv(self, tmp_path):
        out = tmp_path / "landsat.csv"
        main(["generate", "landsat", "--n", "100", "--out", str(out)])
        data = np.loadtxt(out, delimiter=",")
        assert data.shape == (100, 60)

    def test_dna_txt(self, tmp_path):
        out = tmp_path / "dna.txt"
        main(["generate", "dna", "--n", "5000", "--out", str(out)])
        text = out.read_text()
        assert len(text) == 5000
        assert set(text) <= set("ACGT")

    def test_walks(self, tmp_path):
        out = tmp_path / "w.txt"
        main(["generate", "walks", "--n", "640", "--out", str(out)])
        assert np.loadtxt(out).shape == (640,)


class TestJoin:
    def test_point_join_with_pairs_csv(self, tmp_path, capsys):
        left = tmp_path / "l.npy"
        right = tmp_path / "r.npy"
        rng = np.random.default_rng(0)
        np.save(left, rng.random((300, 2)))
        np.save(right, rng.random((200, 2)))
        pairs_out = tmp_path / "pairs.csv"
        code = main([
            "join", "points", str(left), str(right),
            "--epsilon", "0.05", "--buffer", "10",
            "--page-capacity", "16", "--pairs-out", str(pairs_out),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "pairs within epsilon" in output
        lines = pairs_out.read_text().splitlines()
        assert lines[0] == "left_id,right_id"
        assert len(lines) > 1

    def test_point_self_join(self, tmp_path, capsys):
        left = tmp_path / "l.npy"
        np.save(left, np.random.default_rng(1).random((200, 2)))
        assert main([
            "join", "points", str(left),
            "--epsilon", "0.05", "--buffer", "8", "--page-capacity", "16",
        ]) == 0

    def test_dna_join(self, tmp_path, capsys):
        from repro.datasets import markov_dna

        a = tmp_path / "a.txt"
        a.write_text(markov_dna(1200, seed=1))
        assert main([
            "join", "sequence", str(a),
            "--epsilon", "1", "--window", "10",
            "--windows-per-page", "32", "--buffer", "10",
        ]) == 0
        assert "pairs within" in capsys.readouterr().out

    def test_numeric_sequence_join(self, tmp_path):
        seq = tmp_path / "s.txt"
        np.savetxt(seq, np.random.default_rng(2).normal(size=300).cumsum())
        assert main([
            "join", "sequence", str(seq),
            "--epsilon", "0.3", "--window", "8",
            "--windows-per-page", "16", "--buffer", "8",
        ]) == 0

    def test_csv_points_input(self, tmp_path):
        left = tmp_path / "l.csv"
        np.savetxt(left, np.random.default_rng(3).random((100, 2)), delimiter=",")
        assert main([
            "join", "points", str(left),
            "--epsilon", "0.1", "--buffer", "8", "--page-capacity", "16",
        ]) == 0

    def test_method_selection(self, tmp_path, capsys):
        left = tmp_path / "l.npy"
        np.save(left, np.random.default_rng(4).random((100, 2)))
        main([
            "join", "points", str(left),
            "--epsilon", "0.05", "--method", "nlj", "--buffer", "8",
            "--page-capacity", "16",
        ])
        assert "nlj" in capsys.readouterr().out


class TestTraceOut:
    def test_jsonl_trace(self, tmp_path, capsys):
        from repro.obs import read_trace_jsonl

        left = tmp_path / "l.npy"
        np.save(left, np.random.default_rng(5).random((200, 2)))
        trace_out = tmp_path / "trace.jsonl"
        assert main([
            "join", "points", str(left),
            "--epsilon", "0.05", "--buffer", "8", "--page-capacity", "16",
            "--trace-out", str(trace_out),
        ]) == 0
        output = capsys.readouterr().out
        assert "trace summary" in output
        assert f"trace (jsonl) written to {trace_out}" in output
        data = read_trace_jsonl(trace_out)
        names = {s["name"] for s in data["spans"]}
        assert {"join.matrix", "join.execution"} <= names
        assert data["metrics"]["counters"]["disk.reads"] > 0

    def test_chrome_trace(self, tmp_path, capsys):
        import json

        left = tmp_path / "l.npy"
        np.save(left, np.random.default_rng(6).random((200, 2)))
        trace_out = tmp_path / "trace.json"
        assert main([
            "join", "points", str(left),
            "--epsilon", "0.05", "--buffer", "8", "--page-capacity", "16",
            "--trace-out", str(trace_out), "--trace-format", "chrome",
        ]) == 0
        trace = json.loads(trace_out.read_text())
        assert trace["traceEvents"]
        assert all(ev["ph"] in ("X", "i") for ev in trace["traceEvents"])


class TestKernelBackendFlag:
    def _points(self, tmp_path):
        left = tmp_path / "l.npy"
        np.save(left, np.random.default_rng(9).random((200, 2)))
        return left

    def test_named_backend_accepted(self, tmp_path, capsys):
        left = self._points(tmp_path)
        for backend in ("numpy", "wavefront"):
            assert main([
                "join", "points", str(left),
                "--epsilon", "0.05", "--buffer", "8", "--page-capacity", "16",
                "--kernel-backend", backend,
            ]) == 0
            assert "pairs within" in capsys.readouterr().out

    def test_unknown_backend_fails_fast_with_listing(self, tmp_path, capsys):
        left = self._points(tmp_path)
        code = main([
            "join", "points", str(left),
            "--epsilon", "0.05", "--buffer", "8", "--page-capacity", "16",
            "--kernel-backend", "fortran",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "fortran" in err
        assert "registered backends" in err
        assert "wavefront" in err


class TestVersion:
    def test_version_flag_matches_package(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_version_resolves_from_pyproject(self):
        import re
        from pathlib import Path

        import repro

        pyproject = Path(repro.__file__).resolve().parent.parent.parent / "pyproject.toml"
        declared = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        ).group(1)
        assert repro.__version__ == declared

"""Tests for the sampling estimators."""

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.experiments.estimate import (
    estimate_join_selectivity,
    estimate_matrix_density,
)


class TestMatrixDensityEstimate:
    def test_tracks_true_density(self, vector_pair):
        r, s = vector_pair
        result = join(r, s, 0.05, method="pm-nlj", buffer_pages=8, count_only=True)
        true_density = result.report.extra["matrix_density"]
        estimate = estimate_matrix_density(r, s, 0.05, samples=3000, seed=1)
        assert abs(estimate.proportion - true_density) < 5 * estimate.standard_error + 0.02

    def test_zero_epsilon_far_apart(self, rng):
        r = IndexedDataset.from_points(rng.random((50, 2)), page_capacity=8)
        s = IndexedDataset.from_points(rng.random((50, 2)) + 10.0, page_capacity=8)
        estimate = estimate_matrix_density(r, s, 0.1, samples=200)
        assert estimate.proportion == 0.0

    def test_validation(self, vector_pair):
        r, s = vector_pair
        with pytest.raises(ValueError):
            estimate_matrix_density(r, s, 0.1, samples=0)


class TestSelectivityEstimate:
    def test_tracks_true_selectivity_vectors(self, rng):
        pts_r = rng.random((150, 2))
        pts_s = rng.random((120, 2))
        r = IndexedDataset.from_points(pts_r, page_capacity=8)
        s = IndexedDataset.from_points(pts_s, page_capacity=8)
        epsilon = 0.2
        true_pairs = join(r, s, epsilon, method="sc", buffer_pages=8,
                          count_only=True).num_pairs
        true_selectivity = true_pairs / (150 * 120)
        estimate = estimate_join_selectivity(r, s, epsilon, samples=4000, seed=2)
        assert abs(estimate.proportion - true_selectivity) < (
            5 * estimate.standard_error + 0.01
        )
        projected = estimate.scaled(150 * 120)
        assert projected == pytest.approx(estimate.proportion * 18000)

    def test_text_estimation_runs(self, dna_dataset):
        estimate = estimate_join_selectivity(
            dna_dataset, dna_dataset, 1, samples=300, seed=3
        )
        assert 0.0 <= estimate.proportion <= 1.0
        assert "samples" in str(estimate)

    def test_series_estimation_runs(self, rng):
        seq = rng.normal(size=300).cumsum()
        ds = IndexedDataset.from_time_series(seq, window_length=8, windows_per_page=16)
        estimate = estimate_join_selectivity(ds, ds, 0.5, samples=300)
        assert estimate.samples == 300

"""Smoke tests for the figure runners at tiny scales.

These verify the runners execute end to end and return well-formed
results; the paper-shape assertions at meaningful scales live in the
benchmark suite.
"""

import pytest

from repro.experiments.figures import (
    CostBreakdownResult,
    SeriesResult,
    buffers_from_fractions,
    figure10,
    figure11,
    lbeach_mcounty,
    landsat_pair,
    hchr18,
    mchr18,
)

TINY_SPATIAL = 0.02
TINY_GENOME = 0.001
TINY_LANDSAT = 0.01


class TestDatasetBuilders:
    def test_lbeach_mcounty_cached(self):
        a = lbeach_mcounty(TINY_SPATIAL)
        b = lbeach_mcounty(TINY_SPATIAL)
        assert a[0] is b[0]

    def test_landsat_pair_disjoint_sizes(self):
        r, s = landsat_pair(TINY_LANDSAT, fraction=0.125)
        assert r.num_objects == s.num_objects
        assert r.paged.dataset_id != s.paged.dataset_id

    def test_genomes(self):
        g = hchr18(TINY_GENOME)
        m = mchr18(TINY_GENOME)
        assert g.kind == m.kind == "text"
        assert g.num_pages >= 32

    def test_buffers_from_fractions(self):
        assert buffers_from_fractions(100, [0.1, 0.5]) == [10, 50]
        assert buffers_from_fractions(10, [0.01]) == [4]  # floor applies


class TestFigureRunners:
    def test_figure10_structure(self):
        result = figure10(scale=TINY_SPATIAL, buffer_pages=8)
        assert isinstance(result, CostBreakdownResult)
        assert set(result.runs) == {"nlj", "pm-nlj", "rand-sc", "sc"}
        text = result.to_text()
        assert "paper" in text and "sc" in text
        assert result.total("sc") > 0

    def test_figure11_structure(self):
        result = figure11(scale=TINY_GENOME, buffer_pages=8)
        assert isinstance(result, CostBreakdownResult)
        assert result.io("sc") > 0

    def test_figure12_structure(self):
        from repro.experiments.figures import figure12

        result = figure12(scale=TINY_GENOME, buffer_sizes=[8, 16])
        assert isinstance(result, SeriesResult)
        assert result.xs == [8, 16]
        assert set(result.series) == {"nlj", "pm-nlj", "rand-sc", "sc"}
        assert all(v is not None for series in result.series.values() for v in series)

    def test_series_result_at(self):
        from repro.experiments.figures import figure12

        result = figure12(scale=TINY_GENOME, buffer_sizes=[8, 16])
        assert result.at("sc", 8) == result.series["sc"][0]

"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.experiments.plot import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            [1, 10, 100],
            {"a": [1.0, 10.0, 100.0], "b": [100.0, 10.0, 1.0]},
            title="T",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "o=a" in lines[-1] and "x=b" in lines[-1]
        assert "o" in chart and "x" in chart

    def test_monotone_series_marks_corners(self):
        chart = ascii_chart([1, 100], {"a": [1.0, 1000.0]}, width=20, height=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        # Lowest value bottom-left, highest top-right.
        assert rows[0].rstrip().endswith("o|")
        assert "o" in rows[-1].split("|")[1][:3]

    def test_none_values_skipped(self):
        chart = ascii_chart([1, 10, 100], {"a": [None, 5.0, 50.0]})
        grid = "".join(line for line in chart.splitlines() if "|" in line)
        assert grid.count("o") == 2

    def test_linear_scales(self):
        chart = ascii_chart(
            [0, 5, 10], {"a": [0.0, 5.0, 10.0]}, log_x=False, log_y=False
        )
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [None, None]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0, 2.0]}, width=4)

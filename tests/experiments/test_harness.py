"""Unit tests for the experiment harness and report formatting."""

import pytest

from repro.experiments.harness import run_methods, sweep_buffer_sizes
from repro.experiments.report import format_series, format_table


class TestRunMethods:
    def test_collects_reports(self, vector_pair):
        r, s = vector_pair
        runs = run_methods(r, s, 0.05, ["nlj", "sc"], buffer_pages=10)
        assert set(runs) == {"nlj", "sc"}
        assert all(run.feasible for run in runs.values())
        assert runs["sc"].total_seconds is not None

    def test_result_agreement_enforced(self, vector_pair):
        r, s = vector_pair
        runs = run_methods(r, s, 0.05, ["nlj", "pm-nlj", "sc"], buffer_pages=10)
        counts = {run.num_pairs for run in runs.values()}
        assert len(counts) == 1

    def test_infeasible_method_reported_as_none(self, rng):
        from repro.core.join import IndexedDataset

        r = IndexedDataset.from_points(rng.random((400, 2)), page_capacity=4)
        s = IndexedDataset.from_points(rng.random((400, 2)), page_capacity=4)
        runs = run_methods(r, s, 0.3, ["bfrj", "sc"], buffer_pages=2)
        assert not runs["bfrj"].feasible
        assert runs["bfrj"].total_seconds is None
        assert runs["sc"].feasible


class TestSweep:
    def test_one_run_per_buffer(self, vector_pair):
        r, s = vector_pair
        per_method = sweep_buffer_sizes(r, s, 0.05, ["sc"], [6, 12, 24])
        assert len(per_method["sc"]) == 3
        assert [run.buffer_pages for run in per_method["sc"]] == [6, 12, 24]


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bbb" in lines[1]
        assert "2.500" in text
        assert "0.125" in text

    def test_format_series_handles_none(self):
        text = format_series("x", [1, 2], {"m": [1.0, None]})
        assert "-" in text
        assert "1.000s" in text

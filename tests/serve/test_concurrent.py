"""Concurrent serving correctness: interleavings change nothing.

N threads issue mixed join / append / explain requests against one
session.  Every response is then replayed serially: a fresh session is
driven through the same append sequence, and each concurrent join is
matched — by the dataset fingerprint it was served against — to the
serial join of the identical resident state.  Pairs must be identical
and counters must be identical up to the matrix-build provenance
(warm-vs-cold sweep counters and ``serving.*`` bookkeeping), which is
exactly the guarantee the session makes: per-request work is a pure
function of the resident snapshot, never of the interleaving.
"""

import threading

import pytest

from repro.core.join import IndexedDataset
from repro.datasets import markov_dna
from repro.serve import JoinSession

# Counters that describe how the matrix came to exist (built cold vs
# loaded warm), the session's own bookkeeping, or explain-only
# reconciliation — everything else must match bit-for-bit between a
# concurrent request and its serial replay.
_PROVENANCE_PREFIXES = ("serving.", "sweep.", "filter.", "matrix.", "explain.")

_WINDOW = 48
_PER_PAGE = 64
_EPSILONS = (1.0, 2.0)


def _comparable(counters):
    return {
        k: v
        for k, v in counters.items()
        if not k.startswith(_PROVENANCE_PREFIXES)
    }


def _dataset(text):
    return IndexedDataset.from_string(
        text, window_length=_WINDOW, windows_per_page=_PER_PAGE
    )


def _session():
    return JoinSession(shared_buffer_frames=200, request_buffer_pages=20)


@pytest.fixture(scope="module")
def base_text():
    return markov_dna(2500, seed=1)


@pytest.fixture(scope="module")
def suffixes():
    return [markov_dna(220, seed=40 + k) for k in range(3)]


def test_concurrent_mixed_ops_match_serial_replay(base_text, suffixes):
    sess = _session()
    sess.register("g", _dataset(base_text))

    responses = []
    responses_lock = threading.Lock()
    errors = []

    def joiner(epsilon, explain):
        try:
            for _ in range(3):
                response = sess.join(
                    "g", "g", epsilon=epsilon, explain=explain
                )
                with responses_lock:
                    responses.append(response)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def appender():
        try:
            for suffix in suffixes:
                sess.append("g", suffix)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=joiner, args=(_EPSILONS[0], False)),
        threading.Thread(target=joiner, args=(_EPSILONS[1], False)),
        threading.Thread(target=joiner, args=(_EPSILONS[0], True)),
        threading.Thread(target=appender),
        threading.Thread(target=joiner, args=(_EPSILONS[1], True)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(responses) == 12

    # Serial replay: walk the same append sequence, recording for every
    # (resident fingerprint, epsilon) the serialized join's outcome.
    serial = _session()
    serial.register("g", _dataset(base_text))
    expected = {}

    def snapshot_state():
        fp = serial._datasets["g"].fingerprint
        for epsilon in _EPSILONS:
            reference = serial.join("g", "g", epsilon=epsilon)
            expected[(fp, epsilon)] = {
                "pairs": sorted(map(tuple, reference["pairs"])),
                "num_pairs": reference["num_pairs"],
                "counters": _comparable(reference["counters"]),
            }

    snapshot_state()
    for suffix in suffixes:
        serial.append("g", suffix)
        snapshot_state()

    for response in responses:
        key = (response["fingerprints"]["r"], response["epsilon"])
        assert key in expected, "join served against an unknown snapshot"
        reference = expected[key]
        assert response["num_pairs"] == reference["num_pairs"]
        assert sorted(map(tuple, response["pairs"])) == reference["pairs"]
        assert _comparable(response["counters"]) == reference["counters"]
        if response["matrix_cache"] == "hit":
            assert response["matrix_seconds"] == 0.0


def test_concurrent_appends_and_joins_never_error(base_text):
    sess = JoinSession(shared_buffer_frames=60, request_buffer_pages=20)
    sess.register("g", _dataset(base_text))
    errors = []

    def worker(op_seed):
        try:
            if op_seed % 2:
                sess.append("g", markov_dna(120, seed=100 + op_seed))
            else:
                sess.join("g", "g", epsilon=1.0, include_pairs=False)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    # Final state is exactly the serial application of the four appends.
    final = sess.join("g", "g", epsilon=1.0, include_pairs=False)
    counters = sess.counters()
    assert counters["serving.appends"] == 4
    assert final["num_pairs"] >= 0


def test_pool_occupancy_bounded_during_concurrent_joins(base_text):
    frames = 20
    sess = JoinSession(
        shared_buffer_frames=2 * frames, request_buffer_pages=frames,
        max_queue=8, admit_timeout_s=10.0,
    )
    sess.register("g", _dataset(base_text))
    peaks = []
    lock = threading.Lock()
    errors = []

    def worker():
        try:
            for _ in range(3):
                sess.join("g", "g", epsilon=1.0, include_pairs=False)
                with lock:
                    peaks.append(sess.pool.leased)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(5)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert max(peaks) <= 2 * frames
    assert sess.pool.leased == 0

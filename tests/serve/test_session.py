"""JoinSession: warm-path guarantees and incremental-append equivalence."""

import numpy as np
import pytest

from repro.core.join import IndexedDataset
from repro.core.sweep import build_prediction_matrix
from repro.datasets import markov_dna
from repro.errors import ConfigError
from repro.serve import JoinSession
from repro.serve.incremental import append_to_dataset, rebuild_dataset
from repro.storage.persist import FingerprintChain, matrix_cache_key


def _strip_serving(counters):
    return {k: v for k, v in counters.items() if not k.startswith("serving.")}


def _text_dataset(length=3000, seed=1, window=48, per_page=64, dataset_id=None):
    return IndexedDataset.from_string(
        markov_dna(length, seed=seed),
        window_length=window,
        windows_per_page=per_page,
        dataset_id=dataset_id,
    )


def _session(**overrides):
    defaults = dict(shared_buffer_frames=96, request_buffer_pages=24)
    defaults.update(overrides)
    return JoinSession(**defaults)


class TestWarmPath:
    def test_repeat_join_hits_resident_matrix(self):
        sess = _session()
        sess.register("g", _text_dataset())
        cold = sess.join("g", "g", epsilon=1.0)
        warm = sess.join("g", "g", epsilon=1.0)
        assert cold["matrix_cache"] == "miss"
        assert warm["matrix_cache"] == "hit"
        assert warm["num_pairs"] == cold["num_pairs"]
        assert sorted(map(tuple, warm["pairs"])) == sorted(map(tuple, cold["pairs"]))

    def test_warm_join_charges_zero_sweep_and_matrix_seconds(self):
        sess = _session()
        sess.register("g", _text_dataset())
        sess.join("g", "g", epsilon=1.0)
        warm = sess.join("g", "g", epsilon=1.0)
        assert warm["matrix_seconds"] == 0.0
        assert warm["counters"]["serving.warm_hit"] == 1
        assert not any(k.startswith("sweep.") for k in warm["counters"])
        assert sess.counters()["serving.warm_hits"] == 1
        assert sess.counters()["serving.cold_misses"] == 1

    def test_warm_path_does_not_rehash_pages(self):
        sess = _session()
        sess.register("g", _text_dataset())
        entry = sess._datasets["g"]
        assert entry.dataset.fingerprint_memo == entry.fingerprint

    def test_distinct_epsilons_get_distinct_entries(self):
        sess = _session()
        sess.register("g", _text_dataset())
        assert sess.join("g", "g", epsilon=1.0)["matrix_cache"] == "miss"
        assert sess.join("g", "g", epsilon=2.0)["matrix_cache"] == "miss"
        assert sess.join("g", "g", epsilon=1.0)["matrix_cache"] == "hit"
        assert sess.join("g", "g", epsilon=2.0)["matrix_cache"] == "hit"

    def test_evict_drops_dataset_and_cache_entries(self):
        sess = _session()
        sess.register("g", _text_dataset())
        sess.join("g", "g", epsilon=1.0)
        outcome = sess.evict("g")
        assert outcome["dropped_matrices"] == 1
        assert sess.datasets() == []
        with pytest.raises(KeyError):
            sess.join("g", "g", epsilon=1.0)

    def test_duplicate_register_rejected(self):
        sess = _session()
        sess.register("g", _text_dataset())
        with pytest.raises(ValueError):
            sess.register("g", _text_dataset())


class TestIncrementalAppend:
    """Appends must be bit-identical to cold-rebuilding the final state."""

    def _assert_patched_equals_rebuilt(self, sess, dataset_id, epsilon):
        entry = sess._datasets[dataset_id]
        rebuilt = rebuild_dataset(entry.dataset)
        reference, _ = build_prediction_matrix(
            rebuilt.index.root,
            rebuilt.index.root,
            epsilon,
            rebuilt.num_pages,
            rebuilt.num_pages,
            max_filter_rounds=5,
        )
        key = matrix_cache_key(entry.fingerprint, entry.fingerprint, epsilon, 5)
        patched = sess.store.peek_matrix(key)
        assert patched is not None
        assert patched == reference

    def test_text_append_patches_matrix_to_rebuilt_state(self):
        sess = _session()
        sess.register("g", _text_dataset())
        sess.join("g", "g", epsilon=1.0)
        outcome = sess.append("g", markov_dna(700, seed=9))
        assert outcome["matrices_patched"] == 1
        assert outcome["pages_after"] > outcome["pages_before"]
        self._assert_patched_equals_rebuilt(sess, "g", 1.0)

    def test_text_append_join_bit_identical_to_cold_rebuild(self):
        text = markov_dna(3000, seed=1)
        suffix = markov_dna(700, seed=9)
        sess = _session()
        sess.register(
            "g",
            IndexedDataset.from_string(
                text, window_length=48, windows_per_page=64
            ),
        )
        sess.join("g", "g", epsilon=1.0)
        sess.append("g", suffix)
        served = sess.join("g", "g", epsilon=1.0)
        assert served["matrix_cache"] == "hit"

        ref_sess = _session()
        ref_sess.register(
            "ref",
            IndexedDataset.from_string(
                text + suffix, window_length=48, windows_per_page=64
            ),
        )
        ref_sess.join("ref", "ref", epsilon=1.0)
        reference = ref_sess.join("ref", "ref", epsilon=1.0)
        assert reference["matrix_cache"] == "hit"
        assert sorted(map(tuple, served["pairs"])) == sorted(
            map(tuple, reference["pairs"])
        )
        assert _strip_serving(served["counters"]) == _strip_serving(
            reference["counters"]
        )

    def test_vector_append_patches_matrix_to_rebuilt_state(self):
        rng = np.random.default_rng(3)
        sess = _session()
        dataset = IndexedDataset.from_points(rng.random((400, 3)), page_capacity=32)
        sess.register("v", dataset, page_capacity=32)
        sess.join("v", "v", epsilon=0.2)
        outcome = sess.append("v", rng.random((90, 3)))
        assert outcome["matrices_patched"] == 1
        assert outcome["dirty_pages"] == []
        self._assert_patched_equals_rebuilt(sess, "v", 0.2)

    def test_series_append_patches_matrix_to_rebuilt_state(self):
        rng = np.random.default_rng(4)
        sess = _session()
        values = rng.normal(size=600).cumsum()
        dataset = IndexedDataset.from_time_series(
            values, window_length=16, windows_per_page=32
        )
        sess.register("t", dataset)
        sess.join("t", "t", epsilon=0.5)
        sess.append("t", rng.normal(size=140).cumsum())
        self._assert_patched_equals_rebuilt(sess, "t", 0.5)

    def test_dtw_series_append_keeps_band_envelope(self):
        rng = np.random.default_rng(5)
        sess = _session()
        values = rng.normal(size=400).cumsum()
        dataset = IndexedDataset.from_time_series(
            values, window_length=16, windows_per_page=32, dtw_band=2
        )
        sess.register("t", dataset)
        sess.join("t", "t", epsilon=0.5)
        sess.append("t", rng.normal(size=120).cumsum())
        self._assert_patched_equals_rebuilt(sess, "t", 0.5)

    def test_paa_series_append_rejected(self):
        rng = np.random.default_rng(6)
        sess = _session()
        dataset = IndexedDataset.from_time_series(
            rng.normal(size=300).cumsum(),
            window_length=16,
            windows_per_page=32,
            feature="paa",
        )
        sess.register("t", dataset)
        with pytest.raises(ConfigError):
            sess.append("t", rng.normal(size=50).cumsum())

    def test_cross_join_matrix_patched_on_one_side(self):
        sess = _session()
        sess.register("a", _text_dataset(seed=1))
        sess.register("b", _text_dataset(seed=2))
        sess.join("a", "b", epsilon=1.0)
        outcome = sess.append("a", markov_dna(500, seed=7))
        assert outcome["matrices_patched"] == 1
        entry_a = sess._datasets["a"]
        entry_b = sess._datasets["b"]
        rebuilt = rebuild_dataset(entry_a.dataset)
        reference, _ = build_prediction_matrix(
            rebuilt.index.root,
            entry_b.dataset.index.root,
            1.0,
            rebuilt.num_pages,
            entry_b.dataset.num_pages,
            max_filter_rounds=5,
        )
        key = matrix_cache_key(entry_a.fingerprint, entry_b.fingerprint, 1.0, 5)
        assert sess.store.peek_matrix(key) == reference

    def test_append_then_fresh_epsilon_builds_from_final_state(self):
        sess = _session()
        sess.register("g", _text_dataset())
        sess.append("g", markov_dna(400, seed=8))
        result = sess.join("g", "g", epsilon=1.0)
        assert result["matrix_cache"] == "miss"
        self._assert_patched_equals_rebuilt(sess, "g", 1.0)


class TestFingerprintChaining:
    """Satellite: incremental fingerprint == from-scratch fingerprint."""

    def test_text_append_chain_matches_scratch(self):
        sess = _session()
        sess.register("g", _text_dataset())
        sess.append("g", markov_dna(700, seed=9))
        entry = sess._datasets["g"]
        scratch = FingerprintChain.from_dataset(entry.dataset).hexdigest()
        assert entry.fingerprint == scratch

    def test_vector_append_chain_matches_scratch(self):
        rng = np.random.default_rng(11)
        sess = _session()
        sess.register(
            "v",
            IndexedDataset.from_points(rng.random((300, 2)), page_capacity=32),
            page_capacity=32,
        )
        sess.append("v", rng.random((70, 2)))
        entry = sess._datasets["v"]
        assert (
            entry.fingerprint
            == FingerprintChain.from_dataset(entry.dataset).hexdigest()
        )

    def test_repeated_appends_stay_chained(self):
        sess = _session()
        sess.register("g", _text_dataset())
        for seed in (21, 22, 23):
            sess.append("g", markov_dna(150, seed=seed))
        entry = sess._datasets["g"]
        assert (
            entry.fingerprint
            == FingerprintChain.from_dataset(entry.dataset).hexdigest()
        )

    def test_append_fingerprint_matches_cold_registration(self):
        text = markov_dna(2000, seed=1)
        suffix = markov_dna(300, seed=2)
        sess = _session()
        sess.register(
            "g",
            IndexedDataset.from_string(text, window_length=48, windows_per_page=64),
        )
        sess.append("g", suffix)
        cold = _session()
        described = cold.register(
            "g2",
            IndexedDataset.from_string(
                text + suffix, window_length=48, windows_per_page=64
            ),
        )
        assert sess._datasets["g"].fingerprint == described["fingerprint"]


class TestAppendDeltas:
    def test_dirty_pages_limited_to_old_last_page(self):
        dataset = _text_dataset(length=2000, window=48, per_page=64)
        chain = FingerprintChain.from_dataset(dataset)
        delta = append_to_dataset(dataset, chain, markov_dna(300, seed=5))
        assert all(p == dataset.num_pages - 1 for p in delta.dirty_pages)
        assert delta.pages_after == delta.dataset.num_pages

    def test_old_snapshot_untouched_by_append(self):
        dataset = _text_dataset(length=2000)
        chain = FingerprintChain.from_dataset(dataset)
        before_pages = dataset.num_pages
        before_fp = chain.hexdigest()
        append_to_dataset(dataset, chain, markov_dna(300, seed=5))
        assert dataset.num_pages == before_pages
        assert chain.hexdigest() == before_fp

    def test_subsequence_join_rejects_vectors(self):
        rng = np.random.default_rng(2)
        sess = _session()
        sess.register(
            "v", IndexedDataset.from_points(rng.random((100, 2)), page_capacity=16)
        )
        with pytest.raises(ValueError):
            sess.subsequence_join("v", "v", epsilon=0.1)

"""Frame leases and admission control: the pin budget is never exceeded."""

import threading
import time

import pytest

from repro.costmodel import DEFAULT_COST_MODEL
from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def _pool(capacity=8):
    return BufferPool(SimulatedDisk(DEFAULT_COST_MODEL), capacity)


class TestBufferLease:
    def test_lease_reduces_available_until_released(self):
        pool = _pool(8)
        lease = pool.try_lease(5)
        assert lease is not None
        assert pool.available == 3
        assert pool.leased == 5
        lease.release()
        assert pool.available == 8

    def test_exhausted_pool_returns_none(self):
        pool = _pool(8)
        first = pool.try_lease(6)
        assert first is not None
        assert pool.try_lease(3) is None
        first.release()
        assert pool.try_lease(3) is not None

    def test_release_is_idempotent(self):
        pool = _pool(4)
        lease = pool.try_lease(4)
        lease.release()
        lease.release()
        assert pool.leased == 0

    def test_context_manager_releases(self):
        pool = _pool(4)
        with pool.try_lease(4):
            assert pool.leased == 4
        assert pool.leased == 0

    def test_impossible_requests_raise(self):
        pool = _pool(4)
        with pytest.raises(ValueError):
            pool.try_lease(-1)
        with pytest.raises(ValueError):
            pool.try_lease(5)

    def test_concurrent_leases_never_exceed_capacity(self):
        pool = _pool(10)
        peak = []
        peak_lock = threading.Lock()
        stop = time.monotonic() + 0.5

        def worker():
            while time.monotonic() < stop:
                lease = pool.try_lease(3)
                if lease is None:
                    continue
                with peak_lock:
                    peak.append(pool.leased)
                lease.release()

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert peak
        assert max(peak) <= 10


class TestAdmissionController:
    def test_admit_and_release(self):
        controller = AdmissionController(_pool(8), max_queue=2, timeout_s=1.0)
        with controller.admit(8) as ticket:
            assert ticket.frames == 8
            assert controller.pool.leased == 8
        assert controller.pool.leased == 0
        assert controller.admitted_total == 1

    def test_full_queue_rejects_immediately(self):
        controller = AdmissionController(_pool(4), max_queue=0, timeout_s=5.0)
        ticket = controller.admit(4)
        started = time.monotonic()
        with pytest.raises(AdmissionRejected):
            controller.admit(4)
        assert time.monotonic() - started < 1.0
        assert controller.rejected_total == 1
        ticket.release()

    def test_queued_request_admitted_after_release(self):
        controller = AdmissionController(_pool(4), max_queue=2, timeout_s=5.0)
        ticket = controller.admit(4)
        admitted = threading.Event()

        def waiter():
            follow_up = controller.admit(4)
            admitted.set()
            follow_up.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        ticket.release()
        thread.join(timeout=2.0)
        assert admitted.is_set()
        assert controller.queued_total == 1

    def test_wait_times_out(self):
        controller = AdmissionController(_pool(4), max_queue=2, timeout_s=0.05)
        ticket = controller.admit(4)
        with pytest.raises(AdmissionRejected):
            controller.admit(4)
        assert controller.timed_out_total == 1
        ticket.release()

    def test_stats_report_occupancy(self):
        controller = AdmissionController(_pool(8), max_queue=1)
        ticket = controller.admit(6)
        stats = controller.stats()
        assert stats["capacity_frames"] == 8
        assert stats["leased_frames"] == 6
        ticket.release()

    def test_hammered_controller_respects_budget(self):
        pool = _pool(12)
        controller = AdmissionController(pool, max_queue=16, timeout_s=2.0)
        violations = []
        stop = time.monotonic() + 0.5

        def worker():
            while time.monotonic() < stop:
                try:
                    ticket = controller.admit(5)
                except AdmissionRejected:
                    continue
                if pool.leased > 12:
                    violations.append(pool.leased)
                ticket.release()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert violations == []

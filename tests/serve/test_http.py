"""HTTP round trips against a live ThreadingHTTPServer."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.datasets import markov_dna
from repro.obs import validate_explain
from repro.serve.service import make_server


@pytest.fixture()
def server():
    srv = make_server(
        port=0, shared_buffer_frames=96, request_buffer_pages=24, max_queue=2,
        admit_timeout_s=0.2,
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


def _call(server, method, path, body=None):
    port = server.server_address[1]
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHealthz:
    def test_reports_version_and_occupancy(self, server):
        status, body = _call(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["version"] == repro.__version__
        assert body["uptime_seconds"] >= 0
        assert body["datasets"] == []
        assert body["pool"]["leased_frames"] == 0
        assert "capacity_frames" in body["pool"]


class TestLifecycleOverHttp:
    def test_cold_append_warm_round_trip(self, server):
        text = markov_dna(2500, seed=3)
        status, created = _call(
            server,
            "POST",
            "/datasets",
            {
                "id": "g",
                "kind": "text",
                "text": text,
                "window_length": 48,
                "windows_per_page": 64,
            },
        )
        assert status == 201
        assert created["pages"] > 0

        status, cold = _call(
            server, "POST", "/join", {"r": "g", "epsilon": 1.0}
        )
        assert status == 200
        assert cold["matrix_cache"] == "miss"

        status, appended = _call(
            server,
            "POST",
            "/datasets/g/pages",
            {"suffix": markov_dna(300, seed=4)},
        )
        assert status == 200
        assert appended["pages_after"] > appended["pages_before"]
        assert appended["matrices_patched"] == 1

        status, warm = _call(
            server, "POST", "/join", {"r": "g", "epsilon": 1.0}
        )
        assert status == 200
        assert warm["matrix_cache"] == "hit"
        assert warm["matrix_seconds"] == 0.0
        assert warm["counters"]["serving.warm_hit"] == 1

        status, health = _call(server, "GET", "/healthz")
        assert health["counters"]["serving.warm_hits"] == 1
        assert health["counters"]["serving.appends"] == 1

        status, gone = _call(server, "DELETE", "/datasets/g")
        assert status == 200
        assert gone["dropped_matrices"] >= 1

    def test_vector_register_and_subsequence_rejection(self, server):
        rng = np.random.default_rng(0)
        status, _ = _call(
            server,
            "POST",
            "/datasets",
            {
                "id": "v",
                "kind": "vector",
                "vectors": rng.random((200, 3)).tolist(),
                "page_capacity": 32,
            },
        )
        assert status == 201
        status, joined = _call(
            server, "POST", "/join", {"r": "v", "epsilon": 0.25}
        )
        assert status == 200
        assert joined["num_pairs"] >= 0
        status, body = _call(
            server, "POST", "/subsequence_join", {"r": "v", "epsilon": 0.25}
        )
        assert status == 400
        assert "subsequence_join" in body["error"]

    def test_explain_artifact_is_valid(self, server):
        _call(
            server,
            "POST",
            "/datasets",
            {
                "id": "g",
                "kind": "text",
                "text": markov_dna(1500, seed=5),
                "window_length": 48,
                "windows_per_page": 64,
            },
        )
        status, body = _call(
            server,
            "POST",
            "/join",
            {"r": "g", "epsilon": 1.0, "explain": True, "include_pairs": False},
        )
        assert status == 200
        validate_explain(body["explain"])
        assert body["explain"]["meta"]["request_id"] == body["request_id"]


class TestErrorMapping:
    def test_unknown_dataset_is_404(self, server):
        assert _call(server, "GET", "/datasets/nope")[0] == 404
        assert (
            _call(server, "POST", "/join", {"r": "nope", "epsilon": 1.0})[0]
            == 404
        )

    def test_bad_payloads_are_400(self, server):
        assert _call(server, "POST", "/datasets", {"id": "x"})[0] == 400
        assert (
            _call(
                server,
                "POST",
                "/datasets",
                {"id": "x", "kind": "hypercube"},
            )[0]
            == 400
        )
        _call(
            server,
            "POST",
            "/datasets",
            {
                "id": "g",
                "kind": "text",
                "text": markov_dna(1200, seed=6),
                "window_length": 48,
            },
        )
        assert (
            _call(server, "POST", "/join", {"r": "g", "epsilon": -1.0})[0]
            == 400
        )

    def test_unknown_route_is_404(self, server):
        assert _call(server, "GET", "/teapot")[0] == 404

    def test_admission_exhaustion_is_429(self, server):
        service = server.service
        _call(
            server,
            "POST",
            "/datasets",
            {
                "id": "g",
                "kind": "text",
                "text": markov_dna(1200, seed=7),
                "window_length": 48,
            },
        )
        # Hold the whole frame budget so the request must queue; the
        # fixture's 0.2s admission timeout then maps to 429.
        lease = service.session.pool.try_lease(96)
        assert lease is not None
        try:
            status, body = _call(
                server, "POST", "/join", {"r": "g", "epsilon": 1.0}
            )
        finally:
            lease.release()
        assert status == 429
        assert "error" in body

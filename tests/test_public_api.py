"""The public API surface: exports, errors, doctests."""

import doctest
import importlib

import pytest


class TestExports:
    def test_top_level(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.storage",
            "repro.distance",
            "repro.index",
            "repro.baselines",
            "repro.datasets",
            "repro.sequence",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None, f"{module}.{name}"

    def test_version(self):
        import repro

        assert repro.__version__


class TestErrors:
    def test_hierarchy(self):
        from repro.errors import InfeasibleBufferError, ReproError

        assert issubclass(InfeasibleBufferError, ReproError)
        assert issubclass(ReproError, Exception)

    def test_infeasible_is_catchable_as_repro_error(self, rng):
        from repro.core.join import IndexedDataset, join
        from repro.errors import ReproError

        r = IndexedDataset.from_points(rng.random((400, 2)), page_capacity=4)
        with pytest.raises(ReproError):
            join(r, r, 0.3, method="bfrj", buffer_pages=2)


class TestDoctests:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry.rect",
            "repro.core.prediction",
            "repro.distance.vector",
        ],
    )
    def test_module_doctests(self, module):
        mod = importlib.import_module(module)
        result = doctest.testmod(mod, verbose=False)
        assert result.failed == 0
        assert result.attempted > 0  # the module advertises examples


class TestExperimentsCli:
    def test_main_module_runs_tiny(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["figure10", "--scale", "0.02"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "[figure10" in out

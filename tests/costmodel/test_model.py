"""Unit tests for the cost model."""

import pytest

from repro.costmodel import DEFAULT_COST_MODEL, CostModel, fit_cost_model


class TestCostModel:
    def test_io_cost(self):
        model = CostModel(seek_s=0.01, transfer_s=0.001)
        assert model.io_cost(transfers=10, seeks=2) == pytest.approx(0.03)

    def test_io_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.io_cost(-1, 0)
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.io_cost(0, -1)

    def test_cpu_cost_weighting(self):
        model = CostModel(cpu_compare_s=1e-6)
        assert model.cpu_cost(1000, weight=2.0) == pytest.approx(2e-3)

    def test_cpu_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.cpu_cost(-1)
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.cpu_cost(1, weight=-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostModel(seek_s=-0.1)
        with pytest.raises(ValueError):
            CostModel(transfer_s=0.0)
        with pytest.raises(ValueError):
            CostModel(cpu_compare_s=-1e-9)

    def test_for_page_size_scales_transfer_only(self):
        base = CostModel(seek_s=0.01, transfer_s=0.001)
        scaled = CostModel.for_page_size(4.0, base=base)
        assert scaled.transfer_s == pytest.approx(0.004)
        assert scaled.seek_s == base.seek_s
        assert scaled.cpu_compare_s == base.cpu_compare_s

    def test_for_page_size_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CostModel.for_page_size(0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.seek_s = 1.0  # type: ignore[misc]


class TestFitCostModel:
    """The EXPLAIN calibration helper: exact recovery on simulated data,
    graceful fallback whenever the system is degenerate."""

    TRUE = CostModel(seek_s=0.008, transfer_s=0.0005, cpu_compare_s=2e-7)

    def _sample(self, transfers, seeks, comparisons=0):
        return {
            "transfers": transfers,
            "seeks": seeks,
            "io_seconds": self.TRUE.io_cost(transfers, seeks),
            "comparisons": comparisons,
            "cpu_seconds": self.TRUE.cpu_cost(comparisons),
        }

    def test_two_independent_samples_recover_exactly(self):
        fitted = fit_cost_model(
            [self._sample(100, 10, comparisons=5000), self._sample(40, 25)]
        )
        assert fitted.seek_s == pytest.approx(self.TRUE.seek_s)
        assert fitted.transfer_s == pytest.approx(self.TRUE.transfer_s)
        assert fitted.cpu_compare_s == pytest.approx(self.TRUE.cpu_compare_s)

    def test_overdetermined_consistent_system(self):
        samples = [
            self._sample(t, s)
            for t, s in ((10, 1), (200, 7), (35, 35), (80, 3))
        ]
        fitted = fit_cost_model(samples)
        assert fitted.seek_s == pytest.approx(self.TRUE.seek_s)
        assert fitted.transfer_s == pytest.approx(self.TRUE.transfer_s)

    def test_collinear_io_falls_back_to_base(self):
        # Every sample has the same transfer:seek mix — rank 1, the two
        # rates cannot be separated, so the base values survive.
        base = CostModel(seek_s=0.02, transfer_s=0.002)
        fitted = fit_cost_model(
            [self._sample(10, 5), self._sample(20, 10)], base=base
        )
        assert fitted.seek_s == base.seek_s
        assert fitted.transfer_s == base.transfer_s

    def test_pure_sequential_identifies_transfer_only(self):
        base = CostModel(seek_s=0.02, transfer_s=0.002)
        fitted = fit_cost_model(
            [self._sample(10, 0), self._sample(40, 0)], base=base
        )
        assert fitted.transfer_s == pytest.approx(self.TRUE.transfer_s)
        assert fitted.seek_s == base.seek_s  # unidentifiable, kept

    def test_no_samples_returns_base(self):
        base = CostModel(seek_s=0.1, transfer_s=0.01, cpu_compare_s=1e-8)
        fitted = fit_cost_model([], base=base)
        assert fitted == base

    def test_cpu_fit_from_single_sample(self):
        fitted = fit_cost_model([self._sample(0, 0, comparisons=12345)])
        assert fitted.cpu_compare_s == pytest.approx(self.TRUE.cpu_compare_s)

    def test_result_always_valid(self):
        # Pathological data (io_seconds = 0) must still produce a legal
        # CostModel rather than raising in the constructor.
        fitted = fit_cost_model(
            [{"transfers": 10, "seeks": 0, "io_seconds": 0.0}]
        )
        assert fitted.transfer_s > 0
        assert fitted.seek_s >= 0

"""Unit tests for the cost model."""

import pytest

from repro.costmodel import DEFAULT_COST_MODEL, CostModel


class TestCostModel:
    def test_io_cost(self):
        model = CostModel(seek_s=0.01, transfer_s=0.001)
        assert model.io_cost(transfers=10, seeks=2) == pytest.approx(0.03)

    def test_io_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.io_cost(-1, 0)
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.io_cost(0, -1)

    def test_cpu_cost_weighting(self):
        model = CostModel(cpu_compare_s=1e-6)
        assert model.cpu_cost(1000, weight=2.0) == pytest.approx(2e-3)

    def test_cpu_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.cpu_cost(-1)
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.cpu_cost(1, weight=-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostModel(seek_s=-0.1)
        with pytest.raises(ValueError):
            CostModel(transfer_s=0.0)
        with pytest.raises(ValueError):
            CostModel(cpu_compare_s=-1e-9)

    def test_for_page_size_scales_transfer_only(self):
        base = CostModel(seek_s=0.01, transfer_s=0.001)
        scaled = CostModel.for_page_size(4.0, base=base)
        assert scaled.transfer_s == pytest.approx(0.004)
        assert scaled.seek_s == base.seek_s
        assert scaled.cpu_compare_s == base.cpu_compare_s

    def test_for_page_size_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CostModel.for_page_size(0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.seek_s = 1.0  # type: ignore[misc]

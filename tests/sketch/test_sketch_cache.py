"""Sketch-cache persistence: keying, round trips, corrupt-entry
degradation, concurrent same-key writers (mirrors the prediction-matrix
cache contract in ``tests/core/test_matrix_cache.py``)."""

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.obs import InMemoryRecorder
from repro.sketch.config import PrefilterConfig
from repro.sketch.signatures import build_sketches, sketch_params_fingerprint
from repro.storage.persist import (
    dataset_fingerprint,
    invalidate_sketch_cache,
    load_sketches,
    save_sketches,
    sketch_cache_key,
)


@pytest.fixture
def dataset(rng):
    return IndexedDataset.from_points(rng.random((300, 4)), page_capacity=16)


@pytest.fixture
def config():
    return PrefilterConfig()


def _key(dataset, config):
    return sketch_cache_key(
        dataset_fingerprint(dataset), sketch_params_fingerprint(dataset, config)
    )


class TestKeying:
    def test_deterministic(self, dataset, config):
        assert _key(dataset, config) == _key(dataset, config)

    def test_sensitive_to_params(self, dataset, config):
        assert _key(dataset, config) != _key(
            dataset, PrefilterConfig(num_hashes=config.num_hashes + 1)
        )
        assert _key(dataset, config) != _key(
            dataset, PrefilterConfig(seed=config.seed + 1)
        )

    def test_sensitive_to_data(self, dataset, config, rng):
        other = IndexedDataset.from_points(rng.random((300, 4)), page_capacity=16)
        assert _key(dataset, config) != _key(other, config)


class TestSaveLoad:
    def test_round_trip_exact(self, tmp_path, dataset, config):
        sketches = build_sketches(dataset, config)
        save_sketches(sketches, tmp_path, "k1")
        restored = load_sketches(tmp_path, "k1")
        assert restored.kind == sketches.kind
        assert restored.signatures.dtype == sketches.signatures.dtype
        assert restored.counts.dtype == sketches.counts.dtype
        np.testing.assert_array_equal(restored.signatures, sketches.signatures)
        np.testing.assert_array_equal(restored.counts, sketches.counts)

    def test_minhash_round_trip(self, tmp_path, dna_dataset, config):
        sketches = build_sketches(dna_dataset, config)
        assert sketches.kind == "minhash"
        save_sketches(sketches, tmp_path, "k1")
        restored = load_sketches(tmp_path, "k1")
        assert restored.kind == "minhash"
        assert restored.signatures.dtype == np.uint64
        np.testing.assert_array_equal(restored.signatures, sketches.signatures)

    def test_miss_returns_none(self, tmp_path):
        assert load_sketches(tmp_path, "nothing") is None

    def test_wrong_type_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="PageSketches"):
            save_sketches(np.zeros(3), tmp_path, "k1")

    def test_invalidate_single_and_all(self, tmp_path, dataset, config):
        sketches = build_sketches(dataset, config)
        save_sketches(sketches, tmp_path, "a")
        save_sketches(sketches, tmp_path, "b")
        assert invalidate_sketch_cache(tmp_path, "a") == 1
        assert load_sketches(tmp_path, "a") is None
        assert load_sketches(tmp_path, "b") is not None
        assert invalidate_sketch_cache(tmp_path) == 1
        assert load_sketches(tmp_path, "b") is None
        assert invalidate_sketch_cache(tmp_path) == 0

    def test_coexists_with_matrix_cache(self, tmp_path, dataset, config):
        # Both caches share one directory; invalidating one must not
        # touch the other (distinct filename prefixes).
        from repro.core.sweep import build_prediction_matrix
        from repro.storage.persist import (
            invalidate_matrix_cache,
            load_matrix,
            save_matrix,
        )

        matrix, _ = build_prediction_matrix(
            dataset.index.root, dataset.index.root, 0.1,
            dataset.num_pages, dataset.num_pages,
        )
        save_matrix(matrix, tmp_path, "shared-key")
        save_sketches(build_sketches(dataset, config), tmp_path, "shared-key")
        assert invalidate_matrix_cache(tmp_path) == 1
        assert load_sketches(tmp_path, "shared-key") is not None
        assert invalidate_sketch_cache(tmp_path) == 1
        assert load_matrix(tmp_path, "shared-key") is None


class TestAtomicity:
    """Concurrent cache users share one directory; writes must be atomic
    and corrupt entries must degrade to misses, never errors."""

    def test_no_lingering_tmp_files(self, tmp_path, dataset, config):
        save_sketches(build_sketches(dataset, config), tmp_path, "k1")
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "sk_k1.npz"]
        assert leftovers == []

    def test_corrupt_entry_is_a_miss(self, tmp_path, dataset, config):
        sketches = build_sketches(dataset, config)
        target = save_sketches(sketches, tmp_path, "k1")
        target.write_bytes(target.read_bytes()[:20])
        assert load_sketches(tmp_path, "k1") is None
        target.write_bytes(b"not a zip archive")
        assert load_sketches(tmp_path, "k1") is None
        save_sketches(sketches, tmp_path, "k1")
        assert load_sketches(tmp_path, "k1") is not None

    def test_corrupt_entry_join_rebuilds_as_miss(self, tmp_path, dataset):
        config = PrefilterConfig(mode="exact")
        cold = join(
            dataset, dataset, 0.05, method="sc", buffer_pages=16,
            matrix_cache=tmp_path, prefilter=config,
        )
        for entry in tmp_path.glob("sk_*.npz"):
            entry.write_bytes(b"\x00" * 64)
        rec = InMemoryRecorder()
        rebuilt = join(
            dataset, dataset, 0.05, method="sc", buffer_pages=16,
            matrix_cache=tmp_path, prefilter=config, recorder=rec,
        )
        counters = rec.metrics_snapshot()["counters"]
        assert counters["prefilter.sketch_cache_misses"] == 1
        assert counters["prefilter.sketch_builds"] == 1
        assert sorted(rebuilt.pairs) == sorted(cold.pairs)

    def test_concurrent_writers_same_key(self, tmp_path, dataset, config):
        """Racing writers on one key never expose a partial file."""
        import multiprocessing

        sketches = build_sketches(dataset, config)
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        procs = [
            ctx.Process(target=_save_worker, args=(sketches, str(tmp_path), "shared"))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        restored = load_sketches(tmp_path, "shared")
        np.testing.assert_array_equal(restored.signatures, sketches.signatures)
        leftovers = [
            p.name for p in tmp_path.iterdir() if p.name != "sk_shared.npz"
        ]
        assert leftovers == []


def _save_worker(sketches, directory, key):
    for _ in range(5):
        save_sketches(sketches, directory, key)


class TestJoinWithSketchCache:
    def test_second_join_hits_for_both_sides(self, tmp_path, dataset, rng):
        other = IndexedDataset.from_points(rng.random((250, 4)), page_capacity=16)
        config = PrefilterConfig(mode="exact")
        rec_cold, rec_warm = InMemoryRecorder(), InMemoryRecorder()
        cold = join(
            dataset, other, 0.05, method="sc", buffer_pages=16,
            matrix_cache=tmp_path, prefilter=config, recorder=rec_cold,
        )
        warm = join(
            dataset, other, 0.05, method="sc", buffer_pages=16,
            matrix_cache=tmp_path, prefilter=config, recorder=rec_warm,
        )
        cold_counters = rec_cold.metrics_snapshot()["counters"]
        warm_counters = rec_warm.metrics_snapshot()["counters"]
        assert cold_counters["prefilter.sketch_cache_misses"] == 2
        assert cold_counters["prefilter.sketch_builds"] == 2
        assert warm_counters["prefilter.sketch_cache_hits"] == 2
        assert "prefilter.sketch_builds" not in warm_counters
        assert sorted(warm.pairs) == sorted(cold.pairs)

    def test_self_join_builds_one_sketch(self, tmp_path, dataset):
        rec = InMemoryRecorder()
        join(
            dataset, dataset, 0.05, method="sc", buffer_pages=16,
            matrix_cache=tmp_path, prefilter="exact", recorder=rec,
        )
        counters = rec.metrics_snapshot()["counters"]
        assert counters["prefilter.sketch_builds"] == 1

    def test_no_cache_dir_always_builds(self, dataset):
        rec1, rec2 = InMemoryRecorder(), InMemoryRecorder()
        for rec in (rec1, rec2):
            join(
                dataset, dataset, 0.05, method="sc", buffer_pages=16,
                prefilter="exact", recorder=rec,
            )
        for rec in (rec1, rec2):
            counters = rec.metrics_snapshot()["counters"]
            assert counters["prefilter.sketch_builds"] == 1
            assert "prefilter.sketch_cache_hits" not in counters

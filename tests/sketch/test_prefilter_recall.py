"""Approximate-mode recall contract on the paper's figure configurations.

The acceptance bar: with the default ``recall_target=0.99``, measured
recall (true result pairs surviving the pruning) must meet the target
on the spatial, Landsat, genome and time-series configurations — while
the pruning still removes a meaningful share of cells where the data
permits (genome repeats, self-similar walks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.datasets import random_walks
from repro.obs import InMemoryRecorder
from repro.sketch.cascade import measured_recall, select_unmark
from repro.sketch.config import PrefilterConfig
from repro.experiments.figures import (
    GENOME_BUFFER,
    GENOME_COST_MODEL,
    GENOME_EPSILON,
    LANDSAT_COST_MODEL,
    LANDSAT_EPSILON,
    SPATIAL_EPSILON,
    hchr18,
    landsat_pair,
    lbeach_mcounty,
)

TARGET = 0.99


def _recall_run(r, s, epsilon, **kwargs):
    base = join(r, s, epsilon, **kwargs)
    rec = InMemoryRecorder()
    approx = join(
        r, s, epsilon,
        prefilter=PrefilterConfig(recall_target=TARGET),
        recorder=rec,
        **kwargs,
    )
    recall = measured_recall(base, approx, recorder=rec)
    return recall, base, approx, rec


class TestFigureConfigRecall:
    def test_spatial(self):
        r, s = lbeach_mcounty(0.1)
        recall, base, approx, rec = _recall_run(
            r, s, SPATIAL_EPSILON, method="sc", buffer_pages=40
        )
        assert base.num_pairs > 0
        assert recall >= TARGET
        counters = rec.metrics_snapshot()["counters"]
        assert counters["prefilter.recall_measured_ppm"] >= int(TARGET * 1e6)

    def test_landsat(self):
        r, s = landsat_pair(0.05)
        recall, base, approx, _ = _recall_run(
            r, s, LANDSAT_EPSILON, method="sc", buffer_pages=60,
            cost_model=LANDSAT_COST_MODEL,
        )
        assert base.num_pairs > 0
        assert recall >= TARGET

    def test_genome(self):
        genome = hchr18(0.005)
        recall, base, approx, _ = _recall_run(
            genome, genome, GENOME_EPSILON, method="sc",
            buffer_pages=GENOME_BUFFER, cost_model=GENOME_COST_MODEL,
        )
        assert base.num_pairs > 0
        assert recall >= TARGET
        # The genome's repeat structure leaves most marked cells without
        # shared grams — the minhash prefilter must actually prune.
        info = approx.report.extra["prefilter"]
        assert info["cells_unmarked"] > info["cells_scored"] * 0.25

    def test_series(self):
        walk = random_walks(1, 4000, seed=5)[0]
        series = IndexedDataset.from_time_series(
            walk, window_length=64, windows_per_page=32
        )
        recall, base, approx, _ = _recall_run(
            series, series, 1.5, method="sc", buffer_pages=40
        )
        assert base.num_pairs > 0
        assert recall >= TARGET
        info = approx.report.extra["prefilter"]
        assert info["cells_unmarked"] > info["cells_scored"] * 0.25

    def test_estimated_recall_reported_against_target(self):
        r, s = lbeach_mcounty(0.1)
        _, _, approx, rec = _recall_run(
            r, s, SPATIAL_EPSILON, method="sc", buffer_pages=40
        )
        info = approx.report.extra["prefilter"]
        assert info["mode"] == "approximate"
        assert info["est_recall"] >= TARGET
        counters = rec.metrics_snapshot()["counters"]
        assert counters["prefilter.recall_target_ppm"] == int(TARGET * 1e6)
        assert counters["prefilter.est_recall_ppm"] >= int(TARGET * 1e6)


class TestMeasuredRecall:
    def test_set_based_when_pairs_available(self):
        assert measured_recall([(1, 2), (3, 4)], [(1, 2)]) == 0.5
        assert measured_recall([(1, 2)], [(1, 2), (9, 9)]) == 1.0

    def test_empty_reference_is_perfect(self):
        assert measured_recall([], []) == 1.0

    def test_count_only_falls_back_to_ratio(self):
        class CountOnly:
            pairs = []
            num_pairs = 80

        class CountOnlySmaller:
            pairs = []
            num_pairs = 60

        assert measured_recall(CountOnly(), CountOnlySmaller()) == 0.75
        assert measured_recall(CountOnlySmaller(), CountOnly()) == 1.0

    def test_records_counter(self):
        rec = InMemoryRecorder()
        measured_recall([(1, 2), (3, 4)], [(1, 2)], recorder=rec)
        counters = rec.metrics_snapshot()["counters"]
        assert counters["prefilter.recall_measured_ppm"] == 500000


class TestSelectUnmark:
    def _cells(self, scores, sizes=None):
        n = len(scores)
        rows = np.arange(n, dtype=np.int64)
        cols = np.zeros(n, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        sizes = (
            np.full(n, 100.0) if sizes is None else np.asarray(sizes, dtype=np.float64)
        )
        return rows, cols, scores, sizes

    def test_unmarks_lowest_mass_within_budget(self):
        rows, cols, scores, sizes = self._cells([0.5, 0.001, 0.0005, 0.4])
        unmark, est = select_unmark(rows, cols, scores, sizes, 0.99, 1.0)
        assert unmark.tolist() == [False, True, True, False]
        assert est >= 0.99

    def test_budget_zero_keeps_all(self):
        rows, cols, scores, sizes = self._cells([0.5, 0.001])
        unmark, est = select_unmark(rows, cols, scores, sizes, 1.0, 1.0)
        assert not unmark.any()
        assert est == 1.0

    def test_no_mass_keeps_all(self):
        rows, cols, scores, sizes = self._cells([0.0, 0.0, 0.0])
        unmark, est = select_unmark(rows, cols, scores, sizes, 0.5, 1.0)
        assert not unmark.any()
        assert est == 1.0

    def test_cell_pair_floor_protects_heavy_cells(self):
        # Second cell's mass (0.008 * 100 = 0.8 pairs) exceeds the floor:
        # it survives even though the proportional budget would admit it.
        rows, cols, scores, sizes = self._cells([10.0, 0.008, 0.00001])
        loose, _ = select_unmark(
            rows, cols, scores, sizes, 0.99, 1.0, cell_pair_floor=0.0
        )
        assert loose.tolist() == [False, True, True]
        guarded, _ = select_unmark(
            rows, cols, scores, sizes, 0.99, 1.0, cell_pair_floor=0.5
        )
        assert guarded.tolist() == [False, False, True]

    def test_never_unmarks_everything(self):
        rows, cols, scores, sizes = self._cells([1e-9, 1e-9])
        unmark, _ = select_unmark(rows, cols, scores, sizes, 0.01, 1.0)
        assert not unmark.all()

    def test_margin_scales_budget(self):
        rows, cols, scores, sizes = self._cells([0.5, 0.004, 0.003, 0.002])
        full, _ = select_unmark(rows, cols, scores, sizes, 0.98, 1.0)
        half, _ = select_unmark(rows, cols, scores, sizes, 0.98, 0.5)
        assert half.sum() <= full.sum()

    def test_deterministic_tie_break(self):
        rows = np.asarray([3, 1, 2], dtype=np.int64)
        cols = np.asarray([0, 0, 0], dtype=np.int64)
        scores = np.asarray([0.001, 0.001, 0.001])
        sizes = np.full(3, 100.0)
        first, _ = select_unmark(rows, cols, scores, sizes, 0.998, 1.0)
        second, _ = select_unmark(rows, cols, scores, sizes, 0.998, 1.0)
        assert first.tolist() == second.tolist()
        # Budget of ~0.6 pair-mass admits exactly one 0.1-mass cell... all
        # three fit; shrink the budget so only the lowest (row, col) goes.
        tight, _ = select_unmark(rows, cols, scores, sizes, 0.9989, 0.9)
        assert tight.sum() <= 2

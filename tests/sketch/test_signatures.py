"""Page-sketch construction: shapes, determinism, estimator sanity, and
the configuration surface (``PrefilterConfig`` / ``resolve_prefilter``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.join import IndexedDataset
from repro.datasets import markov_dna
from repro.sketch.config import PrefilterConfig, resolve_prefilter
from repro.sketch.signatures import (
    PageSketches,
    build_sketches,
    sketch_params_fingerprint,
)


@pytest.fixture
def vector_dataset(rng):
    return IndexedDataset.from_points(rng.random((200, 6)), page_capacity=16)


@pytest.fixture
def series_dataset():
    rng = np.random.default_rng(3)
    walk = np.cumsum(rng.normal(size=800))
    return IndexedDataset.from_time_series(
        walk, window_length=32, windows_per_page=32
    )


@pytest.fixture
def text_dataset():
    return IndexedDataset.from_string(
        markov_dna(2000, seed=11), window_length=12, windows_per_page=32
    )


class TestQuantileSketches:
    def test_shapes_and_kind(self, vector_dataset):
        config = PrefilterConfig(num_hashes=5, num_quantiles=9)
        sketches = build_sketches(vector_dataset, config)
        assert sketches.kind == "quantile"
        assert sketches.signatures.shape == (vector_dataset.num_pages, 5, 9)
        assert sketches.signatures.dtype == np.float64
        assert sketches.counts.sum() == vector_dataset.num_objects

    def test_quantiles_monotone_per_projection(self, vector_dataset):
        sketches = build_sketches(vector_dataset, PrefilterConfig())
        diffs = np.diff(sketches.signatures, axis=2)
        assert (diffs >= 0).all()

    def test_deterministic_across_builds(self, vector_dataset):
        a = build_sketches(vector_dataset, PrefilterConfig())
        b = build_sketches(vector_dataset, PrefilterConfig())
        np.testing.assert_array_equal(a.signatures, b.signatures)

    def test_seed_changes_directions(self, vector_dataset):
        a = build_sketches(vector_dataset, PrefilterConfig(seed=1))
        b = build_sketches(vector_dataset, PrefilterConfig(seed=2))
        assert not np.array_equal(a.signatures, b.signatures)

    def test_series_windows_sketched_in_paa_domain(self, series_dataset):
        config = PrefilterConfig(paa_segments=8)
        sketches = build_sketches(series_dataset, config)
        assert sketches.kind == "quantile"
        assert sketches.num_pages == series_dataset.num_pages
        assert sketches.counts.sum() == series_dataset.paged.num_windows


class TestMinhashSketches:
    def test_shapes_and_kind(self, text_dataset):
        config = PrefilterConfig(minhash_hashes=12)
        sketches = build_sketches(text_dataset, config)
        assert sketches.kind == "minhash"
        assert sketches.signatures.shape == (text_dataset.num_pages, 12)
        assert sketches.signatures.dtype == np.uint64

    def test_identical_pages_collide_fully(self):
        # A page-aligned repetition makes two pages' gram sets equal, so
        # every minhash component must agree (Jaccard estimate 1.0).
        block = markov_dna(256, seed=2)
        dataset = IndexedDataset.from_string(
            block + block, window_length=12, windows_per_page=32
        )
        sketches = build_sketches(dataset, PrefilterConfig())
        period_pages = len(block) // 32  # repetition period in pages
        assert dataset.num_pages > period_pages
        np.testing.assert_array_equal(
            sketches.signatures[0], sketches.signatures[period_pages]
        )

    def test_unrelated_sequences_rarely_collide(self):
        a = IndexedDataset.from_string(
            markov_dna(1500, seed=5), window_length=12, windows_per_page=32
        )
        b = IndexedDataset.from_string(
            markov_dna(1500, seed=99), window_length=12, windows_per_page=32
        )
        sk_a = build_sketches(a, PrefilterConfig())
        sk_b = build_sketches(b, PrefilterConfig())
        agreement = (sk_a.signatures[0] == sk_b.signatures[0]).mean()
        assert agreement < 0.5


class TestParamsFingerprint:
    def test_stable(self, vector_dataset):
        config = PrefilterConfig()
        assert sketch_params_fingerprint(
            vector_dataset, config
        ) == sketch_params_fingerprint(vector_dataset, config)

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 8},
            {"num_hashes": 9},
            {"num_quantiles": 13},
        ],
    )
    def test_sensitive_to_quantile_params(self, vector_dataset, override):
        base = sketch_params_fingerprint(vector_dataset, PrefilterConfig())
        other = sketch_params_fingerprint(
            vector_dataset, PrefilterConfig(**override)
        )
        assert base != other

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 8},
            {"minhash_hashes": 24},
            {"ngram_length": 6},
        ],
    )
    def test_sensitive_to_minhash_params(self, text_dataset, override):
        base = sketch_params_fingerprint(text_dataset, PrefilterConfig())
        other = sketch_params_fingerprint(
            text_dataset, PrefilterConfig(**override)
        )
        assert base != other

    def test_mode_and_calibration_do_not_change_key(self, vector_dataset):
        # Calibration knobs (mode, recall target, margin, floor) do not
        # affect the signatures, so they must share one cache entry.
        base = sketch_params_fingerprint(vector_dataset, PrefilterConfig())
        same = sketch_params_fingerprint(
            vector_dataset,
            PrefilterConfig(
                mode="exact", recall_target=0.5, margin=0.1, cell_pair_floor=2.0
            ),
        )
        assert base == same


class TestPrefilterConfig:
    def test_defaults(self):
        config = PrefilterConfig()
        assert config.mode == "approximate"
        assert config.approximate
        assert config.recall_target == 0.99

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "fuzzy"},
            {"recall_target": 0.0},
            {"recall_target": 1.5},
            {"margin": 0.0},
            {"margin": 2.0},
            {"cell_pair_floor": -1.0},
            {"num_hashes": 0},
            {"num_quantiles": 0},
            {"paa_segments": 0},
            {"minhash_hashes": 0},
            {"ngram_length": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PrefilterConfig(**kwargs)

    def test_resolve(self):
        assert resolve_prefilter(None) is None
        assert resolve_prefilter("exact").mode == "exact"
        assert resolve_prefilter("approximate").approximate
        config = PrefilterConfig(recall_target=0.95)
        assert resolve_prefilter(config) is config
        with pytest.raises(ValueError):
            resolve_prefilter("fuzzy")
        with pytest.raises(TypeError):
            resolve_prefilter(0.99)

"""Unit tests for the subsequence-join operator."""

import numpy as np
import pytest

from repro.distance.edit import edit_distance
from repro.sequence.subjoin import subsequence_join


class TestTextSubsequenceJoin:
    def test_periodic_self_join_exact(self):
        result = subsequence_join(
            "ACGTACGTACGTACGT", None, window_length=4, epsilon=0,
            buffer_pages=4, windows_per_page=3,
        )
        # Period 4: offsets p, q with p ≡ q (mod 4), p < q all match.
        expected = {
            (p, q)
            for p in range(13)
            for q in range(p + 1, 13)
            if (q - p) % 4 == 0
        }
        assert set(result.offsets) == expected

    def test_cross_join_brute_force(self):
        from repro.datasets import markov_dna

        a = markov_dna(400, seed=1)
        b = markov_dna(300, seed=2)
        w, eps = 8, 1
        result = subsequence_join(a, b, window_length=w, epsilon=eps,
                                  buffer_pages=6, windows_per_page=16)
        expected = {
            (p, q)
            for p in range(len(a) - w + 1)
            for q in range(len(b) - w + 1)
            if edit_distance(a[p : p + w], b[q : q + w], max_dist=eps) <= eps
        }
        assert set(result.offsets) == expected

    def test_self_join_excludes_trivial(self):
        result = subsequence_join("ACGT" * 30, None, window_length=6, epsilon=1,
                                  buffer_pages=6, windows_per_page=16)
        assert all(p < q for p, q in result.offsets)

    def test_same_object_is_self_join(self):
        text = "ACGT" * 30
        a = subsequence_join(text, None, window_length=6, epsilon=0,
                             buffer_pages=6, windows_per_page=16)
        b = subsequence_join(text, text, window_length=6, epsilon=0,
                             buffer_pages=6, windows_per_page=16)
        # Passing the identical object means self join too.
        assert sorted(a.offsets) == sorted(b.offsets)

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            subsequence_join("ACGT" * 10, np.arange(50.0), window_length=4, epsilon=1)


class TestNumericSubsequenceJoin:
    def test_matches_brute_force(self, rng):
        a = rng.normal(size=150).cumsum()
        b = np.concatenate([a[20:80] + rng.normal(scale=0.01, size=60), rng.normal(size=90).cumsum()])
        w, eps = 10, 0.2
        result = subsequence_join(a, b, window_length=w, epsilon=eps,
                                  buffer_pages=6, windows_per_page=16)
        wa = np.lib.stride_tricks.sliding_window_view(a, w)
        wb = np.lib.stride_tricks.sliding_window_view(b, w)
        expected = {
            (p, q)
            for p in range(wa.shape[0])
            for q in range(wb.shape[0])
            if np.linalg.norm(wa[p] - wb[q]) <= eps
        }
        assert set(result.offsets) == expected
        assert result.num_pairs > 0  # the planted overlap must be found

    def test_report_attached(self, rng):
        seq = rng.normal(size=200).cumsum()
        result = subsequence_join(seq, None, window_length=8, epsilon=0.1,
                                  buffer_pages=6, windows_per_page=16)
        assert result.report.method == "sc"
        assert result.window_length == 8


class TestDtwSubsequenceJoin:
    def test_dtw_band_passthrough(self, rng):
        seq = rng.normal(size=250).cumsum()
        euclid = subsequence_join(seq, None, window_length=10, epsilon=0.4,
                                  buffer_pages=8, windows_per_page=16)
        dtw = subsequence_join(seq, None, window_length=10, epsilon=0.4,
                               buffer_pages=8, windows_per_page=16, dtw_band=2)
        # Warping can only admit more pairs at the same threshold.
        assert set(euclid.offsets) <= set(dtw.offsets)

    def test_dtw_rejected_for_strings(self):
        with pytest.raises(TypeError, match="numeric"):
            subsequence_join("ACGT" * 20, None, window_length=4, epsilon=1,
                             dtw_band=1)

"""Unit tests for window arithmetic."""

import numpy as np
import pytest

from repro.sequence.windows import window_at, window_count


class TestWindowCount:
    def test_text(self):
        assert window_count("ABCDE", 3) == 3

    def test_numeric(self):
        assert window_count(np.arange(10), 4) == 7

    def test_too_short(self):
        assert window_count("AB", 5) == 0

    def test_exact_fit(self):
        assert window_count("ABC", 3) == 1

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            window_count("ABC", 0)


class TestWindowAt:
    def test_text(self):
        assert window_at("ABCDE", 1, 3) == "BCD"

    def test_numeric_view(self):
        seq = np.arange(10.0)
        window = window_at(seq, 2, 4)
        assert np.array_equal(window, [2, 3, 4, 5])

    def test_bounds(self):
        with pytest.raises(IndexError):
            window_at("ABCDE", 3, 3)
        with pytest.raises(IndexError):
            window_at("ABCDE", -1, 3)

"""Wavefront kernels vs the frozen numpy oracle — bitwise, always.

The anti-diagonal sweep reorders *when* cells are computed, never which
float64/int32 operations produce them, so ``dtw_chunk_wavefront`` /
``edit_chunk_wavefront`` must reproduce ``_dtw_chunk`` / ``_edit_chunk``
exactly: every distance bit-for-bit, every early-abandon sentinel, and
the abandoned *count* (the recorder feeds on it).  The strategies below
deliberately hammer the wavefront's sharp edges: band 1, bands clipped
at the matrix corners (band >= w), even and odd window lengths, and
thresholds that kill entire chunks on the first row.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.dtw import _dtw_chunk
from repro.kernels.edit import _edit_chunk, encode_strings
from repro.kernels.wavefront import dtw_chunk_wavefront, edit_chunk_wavefront

finite = st.floats(min_value=-50, max_value=50, allow_nan=False)


@st.composite
def dtw_cases(draw):
    k = draw(st.integers(min_value=1, max_value=10))
    w = draw(st.integers(min_value=1, max_value=14))
    flat = draw(st.lists(finite, min_size=2 * k * w, max_size=2 * k * w))
    block = np.asarray(flat).reshape(2, k, w)
    # Band spans the interesting regimes: 0 (diagonal only), 1, mid,
    # and >= w (fully clipped at both corners).
    band = draw(st.sampled_from([0, 1, max(1, w // 2), w, w + 3]))
    max_dist = draw(
        st.one_of(
            st.none(),
            st.just(0.0),
            st.floats(min_value=0, max_value=40, allow_nan=False),
            st.just(float("inf")),
        )
    )
    return block[0], block[1], band, max_dist


@st.composite
def edit_cases(draw):
    k = draw(st.integers(min_value=1, max_value=10))
    w = draw(st.integers(min_value=1, max_value=16))
    mats = draw(
        st.lists(
            st.lists(st.sampled_from("ACGT"), min_size=w, max_size=w),
            min_size=2 * k,
            max_size=2 * k,
        )
    )
    strings = ["".join(row) for row in mats]
    limit = draw(st.sampled_from([0, 1, 2, draw(st.integers(0, w)), 3 * w]))
    return encode_strings(strings[:k]), encode_strings(strings[k:]), limit


def _assert_dtw_identical(a, b, band, max_dist):
    expected_out, expected_abandoned = _dtw_chunk(a, b, band, max_dist)
    got_out, got_abandoned = dtw_chunk_wavefront(a, b, band, max_dist)
    assert np.array_equal(got_out, expected_out)
    assert got_abandoned == expected_abandoned


def _assert_edit_identical(a, b, limit):
    expected_out, expected_abandoned = _edit_chunk(a, b, limit)
    got_out, got_abandoned = edit_chunk_wavefront(a, b, limit)
    assert np.array_equal(got_out, expected_out)
    assert got_abandoned == expected_abandoned


class TestDtwWavefront:
    @given(dtw_cases())
    @settings(max_examples=200, deadline=None)
    def test_fuzz_bitwise(self, case):
        a, b, band, max_dist = case
        _assert_dtw_identical(a, b, band, max_dist)

    @pytest.mark.parametrize("w", [1, 2, 3, 8, 9])
    @pytest.mark.parametrize("band", [1])
    def test_band_one_even_and_odd_widths(self, w, band):
        rng = np.random.default_rng(w)
        a = rng.normal(size=(7, w))
        b = rng.normal(size=(7, w))
        for max_dist in (None, 1.0):
            _assert_dtw_identical(a, b, band, max_dist)

    @pytest.mark.parametrize("band", [4, 5, 6, 20])
    def test_band_clips_both_corners(self, band):
        # band >= w - 1: _diag_range's corner clipping is exercised on
        # every diagonal.
        rng = np.random.default_rng(band)
        a = rng.normal(size=(5, 5))
        b = rng.normal(size=(5, 5))
        _assert_dtw_identical(a, b, band, 2.0)

    def test_whole_chunk_abandons_first_rows(self):
        # Distances are all >> max_dist, so every pair dies early; the
        # wavefront must report the same abandon count and sentinels.
        rng = np.random.default_rng(0)
        a = rng.normal(size=(16, 12))
        b = a + 100.0
        _assert_dtw_identical(a, b, 3, 0.5)
        _assert_dtw_identical(a, b, 3, 0.0)

    def test_staggered_abandonment(self):
        # Pairs die on different rows -> exercises lazy retirement and
        # the >=30% compaction threshold mid-sweep.
        rng = np.random.default_rng(1)
        w, k = 20, 24
        a = rng.normal(size=(k, w))
        b = a.copy()
        for idx in range(k):
            # Pair idx diverges from column idx%w onward.
            b[idx, idx % w:] += 50.0
        _assert_dtw_identical(a, b, 2, 5.0)

    def test_threshold_exactly_at_distance(self):
        a = np.array([[0.0, 0.0, 0.0]])
        b = np.array([[3.0, 0.0, 0.0]])
        true = _dtw_chunk(a, b, 1, None)[0][0]
        _assert_dtw_identical(a, b, 1, float(true))
        _assert_dtw_identical(a, b, 1, float(np.nextafter(true, 0.0)))


class TestEditWavefront:
    @given(edit_cases())
    @settings(max_examples=200, deadline=None)
    def test_fuzz_bitwise(self, case):
        a, b, limit = case
        _assert_edit_identical(a, b, limit)

    @pytest.mark.parametrize("w", [1, 2, 3, 8, 9])
    def test_tight_limits_even_and_odd_widths(self, w):
        rng = np.random.default_rng(w)
        a = rng.integers(0, 4, size=(9, w)).astype(np.uint8)
        b = rng.integers(0, 4, size=(9, w)).astype(np.uint8)
        for limit in (0, 1, w):
            _assert_edit_identical(a, b, limit)

    def test_whole_chunk_abandons(self):
        a = np.zeros((8, 10), dtype=np.uint8)
        b = np.full((8, 10), 3, dtype=np.uint8)
        _assert_edit_identical(a, b, 0)
        _assert_edit_identical(a, b, 1)

    def test_zero_width_windows(self):
        a = np.empty((4, 0), dtype=np.uint8)
        b = np.empty((4, 0), dtype=np.uint8)
        _assert_edit_identical(a, b, 2)

    def test_staggered_abandonment(self):
        rng = np.random.default_rng(2)
        w, k = 18, 24
        a = rng.integers(0, 4, size=(k, w)).astype(np.uint8)
        b = a.copy()
        for idx in range(k):
            b[idx, idx % w:] = (b[idx, idx % w:] + 1) % 4
        _assert_edit_identical(a, b, 3)

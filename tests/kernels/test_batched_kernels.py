"""Batched kernels must be bit-identical to their scalar references.

The kernel layer's contract (ISSUE 1 tentpole) is that batching changes
*when* numbers are computed, never *which* numbers: ``dtw_batch`` /
``edit_batch`` return exactly what per-pair ``dtw_distance`` /
``edit_distance`` calls return (early-abandon sentinels included), and
``minkowski_pairs`` accepts exactly the pairs the difference-tensor
reference accepts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels.dtw as kdtw
import repro.kernels.edit as kedit
from repro.distance.dtw import DTWDistance, dtw_distance, envelope
from repro.distance.edit import EditDistance, edit_distance
from repro.distance.vector import MinkowskiDistance
from repro.kernels import (
    batch_envelopes,
    dtw_batch,
    edit_batch,
    encode_strings,
    minkowski_pairs,
    minkowski_pairwise,
    registered_backends,
)

# Every registered backend must pass the bit-identity suite — numba
# joins the list automatically when its optional dependency is present.
BACKENDS = sorted(registered_backends())

finite = st.floats(min_value=-50, max_value=50, allow_nan=False)


@st.composite
def window_pair_blocks(draw):
    k = draw(st.integers(min_value=1, max_value=8))
    w = draw(st.integers(min_value=1, max_value=12))
    flat = draw(
        st.lists(finite, min_size=2 * k * w, max_size=2 * k * w)
    )
    block = np.asarray(flat).reshape(2, k, w)
    return block[0], block[1]


@st.composite
def dna_blocks(draw):
    k = draw(st.integers(min_value=1, max_value=8))
    w = draw(st.integers(min_value=1, max_value=16))
    mats = draw(
        st.lists(
            st.lists(st.sampled_from("ACGT"), min_size=w, max_size=w),
            min_size=2 * k,
            max_size=2 * k,
        )
    )
    strings = ["".join(row) for row in mats]
    return strings[:k], strings[k:]


class TestDtwBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(window_pair_blocks(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_unbounded_matches_scalar_bitwise(self, backend, block, band):
        a, b = block
        batched = dtw_batch(a, b, band, backend=backend)
        scalar = np.array(
            [dtw_distance(a[k], b[k], band) for k in range(a.shape[0])]
        )
        assert np.array_equal(batched, scalar)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        window_pair_blocks(),
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=0, max_value=30, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_early_abandon_matches_scalar_bitwise(self, backend, block, band, max_dist):
        a, b = block
        batched = dtw_batch(a, b, band, max_dist=max_dist, backend=backend)
        scalar = np.array(
            [dtw_distance(a[k], b[k], band, max_dist=max_dist) for k in range(a.shape[0])]
        )
        assert np.array_equal(batched, scalar)

    def test_threshold_exactly_at_distance(self):
        """The abandon boundary: max_dist equal to the true distance."""
        a = np.array([[0.0, 0.0, 0.0]])
        b = np.array([[3.0, 0.0, 0.0]])
        true = dtw_distance(a[0], b[0], band=1)
        assert dtw_batch(a, b, 1, max_dist=true)[0] == true
        below = np.nextafter(true, 0.0)
        assert dtw_batch(a, b, 1, max_dist=below)[0] == below + 1.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunking_boundary(self, rng, monkeypatch, backend):
        monkeypatch.setattr(kdtw, "_CHUNK_PAIRS", 3)
        a = rng.normal(size=(10, 6))
        b = rng.normal(size=(10, 6))
        chunked = dtw_batch(a, b, 2, max_dist=2.0, backend=backend)
        scalar = np.array([dtw_distance(a[k], b[k], 2, max_dist=2.0) for k in range(10)])
        assert np.array_equal(chunked, scalar)

    def test_validation(self):
        with pytest.raises(ValueError):
            dtw_batch(np.zeros((1, 3)), np.zeros((1, 4)), band=1)
        with pytest.raises(ValueError):
            dtw_batch(np.zeros((1, 3)), np.zeros((1, 3)), band=-1)
        with pytest.raises(ValueError):
            dtw_batch(np.zeros((1, 0)), np.zeros((1, 0)), band=1)
        assert dtw_batch(np.zeros((0, 3)), np.zeros((0, 3)), band=1).shape == (0,)

    @given(window_pair_blocks(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_batch_envelopes_match_per_row(self, block, band):
        windows, _ = block
        lowers, uppers = batch_envelopes(windows, band)
        for k in range(windows.shape[0]):
            lo, hi = envelope(windows[k], band)
            assert np.array_equal(lowers[k], lo)
            assert np.array_equal(uppers[k], hi)


class TestEditBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(dna_blocks(), st.integers(min_value=0, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar_bitwise(self, backend, block, limit):
        left, right = block
        batched = edit_batch(
            encode_strings(left), encode_strings(right), limit, backend=backend
        )
        scalar = np.array(
            [edit_distance(s, t, max_dist=limit) for s, t in zip(left, right)]
        )
        assert np.array_equal(batched, scalar)

    def test_threshold_exactly_at_distance(self):
        a = encode_strings(["AAAA"])
        b = encode_strings(["AATT"])
        assert edit_batch(a, b, 2)[0] == 2.0
        assert edit_batch(a, b, 1)[0] == 2.0  # sentinel: max_dist + 1

    def test_zero_threshold(self):
        codes = encode_strings(["ACGT", "ACGT"])
        other = encode_strings(["ACGT", "ACGA"])
        assert edit_batch(codes, other, 0).tolist() == [0.0, 1.0]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunking_boundary(self, monkeypatch, backend):
        monkeypatch.setattr(kedit, "_CHUNK_PAIRS", 2)
        left = ["ACGTAC", "TTTTTT", "ACGTTT", "GGGGGG", "ACGTAA"]
        right = ["ACGTAC", "TTTTAA", "TTTTTT", "GGGGCC", "AAGTAA"]
        batched = edit_batch(
            encode_strings(left), encode_strings(right), 3, backend=backend
        )
        scalar = np.array([edit_distance(s, t, max_dist=3) for s, t in zip(left, right)])
        assert np.array_equal(batched, scalar)

    def test_validation(self):
        with pytest.raises(ValueError):
            edit_batch(np.zeros((1, 3), dtype=np.uint8), np.zeros((1, 4), dtype=np.uint8), 1)
        with pytest.raises(ValueError):
            edit_batch(np.zeros((1, 3), dtype=np.uint8), np.zeros((1, 3), dtype=np.uint8), -1)
        with pytest.raises(ValueError):
            encode_strings(["AB", "ABC"])


class TestMinkowskiKernel:
    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0, float("inf")])
    def test_pairs_match_brute_force(self, p, rng):
        left = rng.random((40, 3))
        right = rng.random((30, 3))
        d = MinkowskiDistance(p)
        for eps in (0.0, 0.2, 0.5):
            expected = {
                (i, j)
                for i in range(40)
                for j in range(30)
                if d.distance(left[i], right[j]) <= eps
            }
            assert set(minkowski_pairs(left, right, eps, p)) == expected

    def test_gram_filter_keeps_identical_points_at_zero_epsilon(self, rng):
        pts = rng.normal(size=(50, 8)) * 1e3
        pairs = set(minkowski_pairs(pts, pts.copy(), 0.0, 2.0))
        assert pairs == {(i, i) for i in range(50)}

    @given(
        st.lists(finite, min_size=4, max_size=40),
        st.floats(min_value=0, max_value=20, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_euclidean_pairs_property(self, flat, eps):
        n = len(flat) // 2
        pts = np.asarray(flat[: 2 * n]).reshape(n, 2)
        d = MinkowskiDistance(2.0)
        expected = {
            (i, j)
            for i in range(n)
            for j in range(n)
            if d.distance(pts[i], pts[j]) <= eps
        }
        assert set(minkowski_pairs(pts, pts, eps, 2.0)) == expected

    @pytest.mark.parametrize("p", [1.0, 2.0, float("inf")])
    def test_pairwise_matches_scalar(self, p, rng):
        left = rng.normal(size=(9, 4))
        right = rng.normal(size=(7, 4))
        matrix = minkowski_pairwise(left, right, p)
        d = MinkowskiDistance(p)
        for i in range(9):
            for j in range(7):
                assert matrix[i, j] == pytest.approx(d.distance(left[i], right[j]))

    def test_pairwise_gram_never_materialises_tensor(self, rng):
        # Shape check only: a (4000, 3000) matrix is fine, the
        # (4000, 3000, d) tensor would not be.  Runtime being sane is
        # the real assertion; tracemalloc-level checks live in the bench.
        left = rng.normal(size=(4000, 8))
        right = rng.normal(size=(3000, 8))
        matrix = minkowski_pairwise(left, right, 2.0)
        assert matrix.shape == (4000, 3000)
        assert np.all(np.isfinite(matrix))


class TestAdaptersRouteThroughKernels:
    """The distance classes' pairs_within must equal scalar brute force."""

    def test_dtw_adapter(self, rng):
        d = DTWDistance(band=2)
        left = rng.normal(size=(12, 8))
        right = rng.normal(size=(9, 8))
        for eps in (0.5, 1.5, 3.0):
            expected = {
                (i, j)
                for i in range(12)
                for j in range(9)
                if dtw_distance(left[i], right[j], 2) <= eps
            }
            assert set(d.pairs_within(left, right, eps)) == expected

    def test_edit_adapter_equal_lengths(self):
        d = EditDistance(window_length=6)
        left = ["ACGTAC", "TTTTTT", "ACGTTT"]
        right = ["ACGTAC", "TTTTAA", "CCCCCC", "ACGATT"]
        for eps in (0, 1, 2, 3):
            expected = {
                (i, j)
                for i, s in enumerate(left)
                for j, t in enumerate(right)
                if edit_distance(s, t, max_dist=eps) <= eps
            }
            assert set(d.pairs_within(left, right, eps)) == expected

    def test_edit_adapter_ragged_fallback(self):
        d = EditDistance(window_length=4)
        left = ["ACG", "ACGT"]
        right = ["ACGT", "AC"]
        pairs = set(d.pairs_within(left, right, 1))
        expected = {
            (i, j)
            for i, s in enumerate(left)
            for j, t in enumerate(right)
            if edit_distance(s, t, max_dist=1) <= 1
        }
        assert pairs == expected

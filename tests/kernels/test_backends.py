"""Kernel-backend registry: selection precedence, eager validation,
and the optional-numba registration contract (ISSUE 8 tentpole +
satellites 1/2).

The registry is the single switch point for the refinement kernel
substrate: ``REPRO_KERNEL_BACKEND`` < ``join(kernel_backend=)`` <
``--kernel-backend``.  Unknown names must fail with
:class:`repro.errors.ConfigError` *before* any pages are read, and the
message must list what IS registered so the typo is a one-look fix.
"""

import numpy as np
import pytest

from repro import ConfigError, IndexedDataset, join
from repro.kernels.backends import (
    DEFAULT_KERNEL_BACKEND,
    KERNEL_BACKEND_ENV,
    KernelBackend,
    NumpyKernelBackend,
    WavefrontKernelBackend,
    get_backend,
    numba_available,
    register_backend,
    registered_backends,
    resolve_backend,
)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = registered_backends()
        assert "numpy" in names
        assert "wavefront" in names

    def test_get_backend_returns_named_singleton(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("numpy").name == "numpy"
        assert isinstance(get_backend("numpy"), NumpyKernelBackend)
        assert isinstance(get_backend("wavefront"), WavefrontKernelBackend)

    def test_unknown_backend_raises_config_error_listing_registered(self):
        with pytest.raises(ConfigError) as excinfo:
            get_backend("fortran")
        message = str(excinfo.value)
        assert "fortran" in message
        assert "numpy" in message
        assert "wavefront" in message

    def test_optional_backend_hint_when_absent(self):
        if numba_available():
            pytest.skip("numba installed; the miss hint is unreachable")
        with pytest.raises(ConfigError) as excinfo:
            get_backend("numba")
        assert "numba" in str(excinfo.value)
        assert "optional" in str(excinfo.value)

    def test_cupy_recipe_hint(self):
        with pytest.raises(ConfigError) as excinfo:
            get_backend("cupy")
        assert "recipe" in str(excinfo.value)

    def test_duplicate_registration_requires_overwrite(self):
        with pytest.raises(ConfigError):
            register_backend(NumpyKernelBackend())
        # Overwrite restores the original singleton to keep the
        # registry exactly as the other tests expect.
        original = get_backend("numpy")
        register_backend(original, overwrite=True)
        assert get_backend("numpy") is original


class TestResolvePrecedence:
    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert resolve_backend(None).name == DEFAULT_KERNEL_BACKEND

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        assert resolve_backend("wavefront").name == "wavefront"

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "")
        assert resolve_backend(None).name == DEFAULT_KERNEL_BACKEND

    def test_instance_passthrough(self):
        backend = get_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "no-such-backend")
        with pytest.raises(ConfigError):
            resolve_backend(None)


class TestJoinValidation:
    """join() must reject a bad backend eagerly, before touching pages."""

    @pytest.fixture(scope="class")
    def datasets(self):
        rng = np.random.default_rng(3)
        r = IndexedDataset.from_points(rng.random((60, 2)), page_capacity=8)
        s = IndexedDataset.from_points(rng.random((40, 2)), page_capacity=8)
        return r, s

    def test_unknown_kernel_backend_fails_fast(self, datasets):
        r, s = datasets
        with pytest.raises(ConfigError, match="registered backends"):
            join(r, s, 0.05, buffer_pages=10, kernel_backend="typo")

    def test_named_backends_give_identical_results(self, datasets):
        r, s = datasets
        by_name = {
            name: join(r, s, 0.05, buffer_pages=10, kernel_backend=name)
            for name in ("numpy", "wavefront")
        }
        assert by_name["numpy"].pairs == by_name["wavefront"].pairs

    def test_env_var_selection(self, datasets, monkeypatch):
        r, s = datasets
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "nonexistent")
        with pytest.raises(ConfigError):
            join(r, s, 0.05, buffer_pages=10)


class TestNumbaBackend:
    """Runs only where the optional dependency is installed (CI extra)."""

    pytestmark = pytest.mark.skipif(
        not numba_available(), reason="optional numba dependency not installed"
    )

    def test_numba_registered(self):
        assert "numba" in registered_backends()

    def test_numba_dtw_bitwise_vs_numpy(self):
        rng = np.random.default_rng(11)
        a = rng.normal(size=(40, 24))
        b = a + rng.normal(scale=0.3, size=a.shape)
        oracle = get_backend("numpy")
        candidate = get_backend("numba")
        for max_dist in (None, 0.0, 2.5):
            expected = oracle.dtw_chunk(a, b, 3, max_dist)
            got = candidate.dtw_chunk(a, b, 3, max_dist)
            assert np.array_equal(got[0], expected[0])
            assert got[1] == expected[1]

    def test_numba_edit_bitwise_vs_numpy(self):
        rng = np.random.default_rng(12)
        a = rng.integers(0, 4, size=(30, 16)).astype(np.uint8)
        b = rng.integers(0, 4, size=(30, 16)).astype(np.uint8)
        oracle = get_backend("numpy")
        candidate = get_backend("numba")
        for limit in (0, 2, 7):
            expected = oracle.edit_chunk(a, b, limit)
            got = candidate.edit_chunk(a, b, limit)
            assert np.array_equal(got[0], expected[0])
            assert got[1] == expected[1]


class TestPanelHooks:
    """Default panel hooks delegate to the shared numpy implementations,
    so every backend filters identical candidate sets."""

    def test_custom_backend_inherits_panels(self):
        class Stub(KernelBackend):
            name = "stub-test-only"

        rng = np.random.default_rng(5)
        windows = rng.normal(size=(6, 12))
        stub, reference = Stub(), get_backend("numpy")
        lo_s, hi_s = stub.batch_envelopes(windows, 2)
        lo_r, hi_r = reference.batch_envelopes(windows, 2)
        assert np.array_equal(lo_s, lo_r)
        assert np.array_equal(hi_s, hi_r)

"""Unit tests for the R*-tree."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.index.rstar import RStarTree, build_spatial_page_index


def collect_ids(tree):
    return sorted(
        entry.data_index for leaf in tree.leaf_nodes() for entry in leaf.items
    )


class TestInsertion:
    def test_all_entries_present_after_splits(self, rng):
        tree = RStarTree(max_entries=4)
        pts = rng.random((200, 2))
        for k in range(200):
            tree.insert_point(pts[k], k)
        assert len(tree) == 200
        assert collect_ids(tree) == list(range(200))

    def test_invariants_hold(self, rng):
        tree = RStarTree(max_entries=5)
        pts = rng.random((150, 3))
        for k in range(150):
            tree.insert_point(pts[k], k)
        tree.validate()

    def test_boxes_cover_points(self, rng):
        tree = RStarTree(max_entries=4)
        pts = rng.random((80, 2))
        for k in range(80):
            tree.insert_point(pts[k], k)
        for leaf in tree.leaf_nodes():
            for entry in leaf.items:
                assert leaf.box.contains_rect(entry.rect)

    def test_height_grows_logarithmically(self, rng):
        tree = RStarTree(max_entries=4)
        for k in range(300):
            tree.insert_point(rng.random(2), k)
        assert 3 <= tree.height <= 8

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            RStarTree(max_entries=3)

    def test_rejects_bad_min_fill(self):
        with pytest.raises(ValueError):
            RStarTree(max_entries=8, min_fill=0.9)

    def test_rect_entries(self):
        tree = RStarTree(max_entries=4)
        for k in range(10):
            tree.insert_rect(Rect([k, k], [k + 2, k + 2]), k)
        assert collect_ids(tree) == list(range(10))


class TestBulkLoad:
    def test_all_entries_present(self, rng):
        pts = rng.random((500, 2))
        tree = RStarTree.bulk_load_points(pts, max_entries=16)
        assert len(tree) == 500
        assert collect_ids(tree) == list(range(500))

    def test_leaves_nearly_full(self, rng):
        pts = rng.random((512, 2))
        tree = RStarTree.bulk_load_points(pts, max_entries=16)
        sizes = [len(leaf.items) for leaf in tree.leaf_nodes()]
        assert max(sizes) <= 16
        assert sum(sizes) == 512
        # STR packs tightly: the average leaf is close to capacity.
        assert sum(sizes) / len(sizes) >= 12

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RStarTree.bulk_load_points(np.empty((0, 2)))

    def test_high_dimensional(self, rng):
        pts = rng.random((300, 20))
        tree = RStarTree.bulk_load_points(pts, max_entries=32)
        assert collect_ids(tree) == list(range(300))


class TestPageIndexExtraction:
    @pytest.mark.parametrize("method", ["str", "rstar"])
    def test_order_is_permutation(self, rng, method):
        pts = rng.random((120, 2))
        page_index, reordered = build_spatial_page_index(pts, 16, method=method)
        assert sorted(page_index.order.tolist()) == list(range(120))
        assert np.array_equal(reordered, pts[page_index.order])

    @pytest.mark.parametrize("method", ["str", "rstar"])
    def test_leaf_boxes_cover_their_pages(self, rng, method):
        pts = rng.random((120, 2))
        page_index, reordered = build_spatial_page_index(pts, 16, method=method)
        offsets = page_index.page_offsets
        assert offsets is not None
        for page_no, box in enumerate(page_index.leaf_boxes):
            chunk = reordered[offsets[page_no] : offsets[page_no + 1]]
            assert chunk.shape[0] >= 1
            assert np.all(chunk >= box.lo - 1e-12)
            assert np.all(chunk <= box.hi + 1e-12)

    def test_hierarchy_structurally_valid(self, rng):
        pts = rng.random((200, 2))
        page_index, _ = build_spatial_page_index(pts, 16)
        page_index.root.validate()
        leaves = list(page_index.root.iter_leaves())
        assert [leaf.page_no for leaf in leaves] == list(range(len(leaves)))

    def test_bfs_ids_assigned(self, rng):
        pts = rng.random((200, 2))
        page_index, _ = build_spatial_page_index(pts, 16)
        ids = []
        stack = [page_index.root]
        while stack:
            node = stack.pop()
            ids.append(node.node_id)
            stack.extend(node.children)
        assert sorted(ids) == list(range(page_index.num_index_nodes))

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError):
            build_spatial_page_index(rng.random((10, 2)), 4, method="bogus")

"""Unit tests for R*-tree range search and nearest neighbours."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.index.rstar import RStarTree


@pytest.fixture
def tree_and_points(rng):
    points = rng.random((400, 2))
    tree = RStarTree.bulk_load_points(points, max_entries=16)
    return tree, points


@pytest.fixture
def inserted_tree_and_points(rng):
    points = rng.random((150, 2))
    tree = RStarTree(max_entries=8)
    for k in range(points.shape[0]):
        tree.insert_point(points[k], k)
    return tree, points


class TestRangeSearch:
    @pytest.mark.parametrize("fixture", ["tree_and_points", "inserted_tree_and_points"])
    def test_matches_brute_force(self, fixture, request, rng):
        tree, points = request.getfixturevalue(fixture)
        for _ in range(10):
            lo = rng.random(2) * 0.8
            query = Rect(lo, lo + rng.random(2) * 0.3)
            expected = {
                k for k in range(points.shape[0]) if query.contains_point(points[k])
            }
            assert set(tree.range_search(query)) == expected

    def test_empty_region(self, tree_and_points):
        tree, _ = tree_and_points
        assert tree.range_search(Rect([5, 5], [6, 6])) == []

    def test_whole_space(self, tree_and_points):
        tree, points = tree_and_points
        assert sorted(tree.range_search(Rect([0, 0], [1, 1]))) == list(
            range(points.shape[0])
        )


class TestNearestNeighbours:
    def test_matches_brute_force(self, tree_and_points, rng):
        tree, points = tree_and_points
        for _ in range(10):
            query = rng.random(2)
            dists = np.linalg.norm(points - query, axis=1)
            for k in (1, 5, 10):
                expected = set(np.argsort(dists)[:k].tolist())
                got = set(tree.nearest_neighbours(query, k))
                # Distances can tie; compare by distance values instead.
                expected_d = sorted(dists[list(expected)])
                got_d = sorted(dists[list(got)])
                assert np.allclose(expected_d, got_d)

    def test_k_exceeds_size(self, rng):
        points = rng.random((5, 2))
        tree = RStarTree.bulk_load_points(points, max_entries=4)
        assert sorted(tree.nearest_neighbours([0.5, 0.5], k=50)) == [0, 1, 2, 3, 4]

    def test_nearest_of_exact_point(self, tree_and_points):
        tree, points = tree_and_points
        nearest = tree.nearest_neighbours(points[7], k=1)
        assert nearest == [7]

    def test_rejects_bad_k(self, tree_and_points):
        tree, _ = tree_and_points
        with pytest.raises(ValueError):
            tree.nearest_neighbours([0.5, 0.5], k=0)

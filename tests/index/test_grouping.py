"""Unit tests for the contiguous hierarchy builder."""

import pytest

from repro.geometry import Rect
from repro.index._grouping import build_contiguous_hierarchy


def boxes(n):
    return [Rect([k, 0], [k + 1, 1]) for k in range(n)]


class TestBuildContiguousHierarchy:
    def test_single_leaf_is_root(self):
        root = build_contiguous_hierarchy(boxes(1), fanout=4)
        assert root.is_leaf
        assert root.page_no == 0

    def test_leaves_in_page_order(self):
        root = build_contiguous_hierarchy(boxes(20), fanout=4)
        leaves = list(root.iter_leaves())
        assert [leaf.page_no for leaf in leaves] == list(range(20))

    def test_parent_boxes_cover_children(self):
        root = build_contiguous_hierarchy(boxes(37), fanout=5)
        root.validate()

    def test_fanout_respected(self):
        root = build_contiguous_hierarchy(boxes(64), fanout=4)
        stack = [root]
        while stack:
            node = stack.pop()
            assert len(node.children) <= 4
            stack.extend(node.children)

    @pytest.mark.parametrize("n,fanout,height", [(16, 4, 2), (17, 4, 3), (4, 2, 2)])
    def test_height(self, n, fanout, height):
        root = build_contiguous_hierarchy(boxes(n), fanout=fanout)
        assert root.height() == height

    def test_bfs_ids_assigned(self):
        root = build_contiguous_hierarchy(boxes(10), fanout=3)
        assert root.node_id == 0
        ids = sorted(node.node_id for node in _all_nodes(root))
        assert ids == list(range(root.count_nodes()))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_contiguous_hierarchy([], fanout=4)
        with pytest.raises(ValueError):
            build_contiguous_hierarchy(boxes(4), fanout=1)


def _all_nodes(root):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)

"""Tests for the MRS-index multi-resolution (derived-box) support."""

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.distance.frequency import frequency_vector
from repro.index.mrs import MRSIndex
from repro.storage.page import SequencePagedDataset


@pytest.fixture
def base_index():
    from repro.datasets import markov_dna

    text = markov_dna(1000, seed=6)
    ds = SequencePagedDataset(text, symbols_per_page=24, window_length=8)
    return MRSIndex(ds), text


class TestDerivedBoxes:
    def test_multiple_one_is_identity(self, base_index):
        index, _text = base_index
        assert index.derived_boxes(1) == list(index.leaf_boxes)

    @pytest.mark.parametrize("multiple", [2, 3, 4])
    def test_soundness(self, base_index, multiple):
        """Every long window's frequency vector lies in its page's box."""
        index, text = base_index
        boxes = index.derived_boxes(multiple)
        long_w = multiple * 8
        num_long = len(text) - long_w + 1
        ds = index.dataset
        for offset in range(0, num_long, 7):
            page = ds.page_of_offset(offset)
            vec = frequency_vector(text[offset : offset + long_w])
            assert boxes[page].contains_point(vec), (
                f"offset {offset} escapes its derived box at multiple {multiple}"
            )

    def test_page_count_matches_long_window_dataset(self, base_index):
        index, text = base_index
        multiple = 3
        boxes = index.derived_boxes(multiple)
        long_ds = SequencePagedDataset(text, symbols_per_page=24, window_length=24)
        assert len(boxes) == long_ds.num_pages

    def test_rejects_bad_multiple(self, base_index):
        index, _ = base_index
        with pytest.raises(ValueError):
            index.derived_boxes(0)

    def test_rejects_window_exceeding_sequence(self):
        ds = SequencePagedDataset("ACGTACGTAC", symbols_per_page=4, window_length=4)
        index = MRSIndex(ds)
        with pytest.raises(ValueError):
            index.derived_boxes(10)


class TestMultiResolutionJoin:
    def test_same_results_as_direct_index(self):
        from repro.datasets import markov_dna

        text = markov_dna(1500, seed=8)
        direct = IndexedDataset.from_string(
            text, window_length=16, windows_per_page=32
        )
        derived = IndexedDataset.from_string(
            text, window_length=16, windows_per_page=32, mrs_base_window=8
        )
        a = join(direct, direct, 1, method="sc", buffer_pages=10)
        b = join(derived, derived, 1, method="sc", buffer_pages=10)
        assert sorted(a.pairs) == sorted(b.pairs)

    def test_derived_boxes_are_looser(self):
        from repro.datasets import markov_dna

        text = markov_dna(1500, seed=8)
        direct = IndexedDataset.from_string(text, window_length=16, windows_per_page=32)
        derived = IndexedDataset.from_string(
            text, window_length=16, windows_per_page=32, mrs_base_window=4
        )
        a = join(direct, direct, 1, method="sc", buffer_pages=10, count_only=True)
        b = join(derived, derived, 1, method="sc", buffer_pages=10, count_only=True)
        assert b.report.extra["marked_entries"] >= a.report.extra["marked_entries"]
        assert a.num_pairs == b.num_pairs

    def test_rejects_non_divisor_base(self):
        with pytest.raises(ValueError, match="divide"):
            IndexedDataset.from_string(
                "ACGT" * 100, window_length=10, windows_per_page=16,
                mrs_base_window=4,
            )

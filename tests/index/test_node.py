"""Unit tests for the index-node hierarchy."""

import pytest

from repro.geometry import Rect
from repro.index.node import IndexNode, assign_bfs_ids


def make_tree():
    leaves = [
        IndexNode(box=Rect([k, 0], [k + 1, 1]), page_no=k, level=0) for k in range(4)
    ]
    left = IndexNode(box=Rect([0, 0], [2, 1]), children=leaves[:2], level=1)
    right = IndexNode(box=Rect([2, 0], [4, 1]), children=leaves[2:], level=1)
    root = IndexNode(box=Rect([0, 0], [4, 1]), children=[left, right], level=2)
    return root, leaves


class TestIndexNode:
    def test_iter_leaves_in_order(self):
        root, leaves = make_tree()
        assert list(root.iter_leaves()) == leaves

    def test_counts(self):
        root, _ = make_tree()
        assert root.count_nodes() == 7
        assert root.height() == 2

    def test_is_leaf(self):
        root, leaves = make_tree()
        assert not root.is_leaf
        assert leaves[0].is_leaf

    def test_validate_accepts_good_tree(self):
        root, _ = make_tree()
        root.validate()

    def test_validate_rejects_escaping_child(self):
        root, _ = make_tree()
        root.children[0].box = Rect([0, 0], [0.5, 0.5])
        with pytest.raises(AssertionError):
            root.validate()

    def test_validate_rejects_leaf_without_page(self):
        leaf = IndexNode(box=Rect([0, 0], [1, 1]), level=0)
        with pytest.raises(AssertionError):
            leaf.validate()


class TestBfsIds:
    def test_numbering_is_breadth_first(self):
        root, leaves = make_tree()
        count = assign_bfs_ids(root)
        assert count == 7
        assert root.node_id == 0
        assert [child.node_id for child in root.children] == [1, 2]
        assert [leaf.node_id for leaf in leaves] == [3, 4, 5, 6]

    def test_leaf_bfs_order_matches_page_order(self):
        root, leaves = make_tree()
        assign_bfs_ids(root)
        ids = [leaf.node_id for leaf in leaves]
        pages = [leaf.page_no for leaf in leaves]
        assert ids == sorted(ids)
        assert pages == sorted(pages)

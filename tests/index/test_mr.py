"""Unit tests for the MR-index (time-series window MBRs)."""

import numpy as np
import pytest

from repro.index.mr import MRIndex
from repro.storage.page import SequencePagedDataset


@pytest.fixture
def series_dataset(rng):
    seq = rng.normal(size=300).cumsum()
    return SequencePagedDataset(seq, symbols_per_page=20, window_length=8)


class TestRawFeatures:
    def test_leaf_boxes_cover_windows(self, series_dataset):
        index = MRIndex(series_dataset)
        for page_no, box in enumerate(index.leaf_boxes):
            windows = series_dataset.page_objects(page_no)
            assert np.all(windows >= box.lo - 1e-12)
            assert np.all(windows <= box.hi + 1e-12)

    def test_one_leaf_per_page(self, series_dataset):
        index = MRIndex(series_dataset)
        assert len(index.leaf_boxes) == series_dataset.num_pages
        leaves = list(index.root.iter_leaves())
        assert [leaf.page_no for leaf in leaves] == list(range(series_dataset.num_pages))

    def test_page_index_identity_order(self, series_dataset):
        pi = MRIndex(series_dataset).to_page_index()
        assert np.array_equal(pi.order, np.arange(series_dataset.num_windows))
        assert pi.page_offsets is None

    def test_window_feature_is_the_window(self, series_dataset):
        index = MRIndex(series_dataset)
        seq = np.asarray(series_dataset.sequence)
        assert np.array_equal(index.window_feature(5), seq[5:13])


class TestPaaFeatures:
    def test_paa_lower_bounds_euclidean(self, rng):
        seq = rng.normal(size=200).cumsum()
        ds = SequencePagedDataset(seq, symbols_per_page=16, window_length=12)
        index = MRIndex(ds, feature="paa", paa_segments=4)
        feats = index.features
        windows = np.lib.stride_tricks.sliding_window_view(seq, 12)
        for _ in range(50):
            i, j = rng.integers(0, ds.num_windows, size=2)
            feature_dist = np.linalg.norm(feats[i] - feats[j])
            true_dist = np.linalg.norm(windows[i] - windows[j])
            assert feature_dist <= true_dist + 1e-9

    def test_paa_dimensionality(self, series_dataset):
        index = MRIndex(series_dataset, feature="paa", paa_segments=4)
        assert index.features.shape[1] == 4

    def test_rejects_bad_segments(self, series_dataset):
        with pytest.raises(ValueError):
            MRIndex(series_dataset, feature="paa", paa_segments=0)
        with pytest.raises(ValueError):
            MRIndex(series_dataset, feature="paa", paa_segments=100)


class TestValidation:
    def test_rejects_text_dataset(self):
        text = SequencePagedDataset("ACGTACGTACGT", symbols_per_page=4, window_length=4)
        with pytest.raises(TypeError):
            MRIndex(text)

    def test_rejects_unknown_feature(self, series_dataset):
        with pytest.raises(ValueError):
            MRIndex(series_dataset, feature="dct")

    def test_hierarchy_valid(self, series_dataset):
        MRIndex(series_dataset).root.validate()

"""Unit tests for the MRS-index (string frequency-vector MBRs)."""

import numpy as np
import pytest

from repro.distance.frequency import frequency_vector
from repro.index.mrs import MRSIndex
from repro.storage.page import SequencePagedDataset


@pytest.fixture
def text_dataset():
    from repro.datasets import markov_dna

    text = markov_dna(600, seed=9)
    return SequencePagedDataset(text, symbols_per_page=25, window_length=12)


class TestMRSIndex:
    def test_leaf_boxes_cover_frequency_vectors(self, text_dataset):
        index = MRSIndex(text_dataset)
        for page_no, box in enumerate(index.leaf_boxes):
            start, stop = text_dataset.window_range(page_no)
            for offset in range(start, stop):
                window = text_dataset.sequence[offset : offset + 12]
                vec = frequency_vector(window)
                assert box.contains_point(vec)

    def test_features_match_direct_computation(self, text_dataset):
        index = MRSIndex(text_dataset)
        for offset in (0, 7, 100):
            window = text_dataset.sequence[offset : offset + 12]
            assert np.array_equal(index.features[offset], frequency_vector(window))

    def test_page_features_slice(self, text_dataset):
        index = MRSIndex(text_dataset)
        start, stop = text_dataset.window_range(2)
        assert np.array_equal(index.page_features(2), index.features[start:stop])

    def test_page_index_identity_order(self, text_dataset):
        pi = MRSIndex(text_dataset).to_page_index()
        assert np.array_equal(pi.order, np.arange(text_dataset.num_windows))
        assert len(pi.leaf_boxes) == text_dataset.num_pages

    def test_hierarchy_valid(self, text_dataset):
        MRSIndex(text_dataset).root.validate()

    def test_rejects_numeric_dataset(self, rng):
        numeric = SequencePagedDataset(
            rng.normal(size=100), symbols_per_page=10, window_length=5
        )
        with pytest.raises(TypeError):
            MRSIndex(numeric)

    def test_small_fanout_deepens_tree(self, text_dataset):
        shallow = MRSIndex(text_dataset, fanout=16)
        deep = MRSIndex(text_dataset, fanout=2)
        assert deep.root.height() >= shallow.root.height()

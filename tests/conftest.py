"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.join import IndexedDataset
from repro.costmodel import CostModel
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def cost_model():
    """A cost model with easily-distinguished seek and transfer costs."""
    return CostModel(seek_s=0.010, transfer_s=0.001, cpu_compare_s=1e-6)


@pytest.fixture
def disk(cost_model):
    return SimulatedDisk(cost_model)


@pytest.fixture
def pool(disk):
    return BufferPool(disk, capacity=8)


@pytest.fixture
def small_points(rng):
    """A few hundred clustered 2-d points."""
    centers = rng.random((5, 2))
    labels = rng.integers(0, 5, size=300)
    return np.clip(centers[labels] + rng.normal(scale=0.05, size=(300, 2)), 0, 1)


@pytest.fixture
def vector_pair(small_points, rng):
    """Two small indexed vector datasets."""
    other = np.clip(small_points[:200] + rng.normal(scale=0.02, size=(200, 2)), 0, 1)
    r = IndexedDataset.from_points(small_points, page_capacity=16)
    s = IndexedDataset.from_points(other, page_capacity=16)
    return r, s


@pytest.fixture
def dna_dataset():
    from repro.datasets import markov_dna

    return IndexedDataset.from_string(
        markov_dna(1500, seed=3), window_length=10, windows_per_page=32
    )

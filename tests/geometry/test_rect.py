"""Unit tests for the Rect geometry primitive."""

import math

import numpy as np
import pytest

from repro.geometry import Rect, union_all


class TestConstruction:
    def test_basic(self):
        rect = Rect([0, 0], [2, 3])
        assert rect.dim == 2
        assert rect.area() == 6.0
        assert rect.margin() == 5.0
        assert rect.perimeter() == 10.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Rect([1, 0], [0, 1])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            Rect([0, 0], [1, 1, 1])

    def test_from_point_is_degenerate(self):
        rect = Rect.from_point([1.5, 2.5])
        assert rect.area() == 0.0
        assert rect.contains_point([1.5, 2.5])

    def test_from_points_is_tight(self):
        pts = np.array([[0, 5], [2, 1], [1, 3]], dtype=float)
        rect = Rect.from_points(pts)
        assert np.array_equal(rect.lo, [0, 1])
        assert np.array_equal(rect.hi, [2, 5])

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect.from_points(np.empty((0, 2)))


class TestPredicates:
    def test_intersects_overlap(self):
        assert Rect([0, 0], [2, 2]).intersects(Rect([1, 1], [3, 3]))

    def test_intersects_touching_edges(self):
        # Closed rectangles: shared boundary counts.
        assert Rect([0, 0], [1, 1]).intersects(Rect([1, 0], [2, 1]))

    def test_disjoint(self):
        assert not Rect([0, 0], [1, 1]).intersects(Rect([2, 2], [3, 3]))

    def test_disjoint_in_one_dim_only(self):
        assert not Rect([0, 0], [1, 1]).intersects(Rect([0.2, 5], [0.8, 6]))

    def test_contains_rect(self):
        outer = Rect([0, 0], [10, 10])
        assert outer.contains_rect(Rect([1, 1], [9, 9]))
        assert outer.contains_rect(outer)
        assert not Rect([1, 1], [9, 9]).contains_rect(outer)


class TestOperations:
    def test_intersection(self):
        overlap = Rect([0, 0], [2, 2]).intersection(Rect([1, 1], [3, 3]))
        assert overlap == Rect([1, 1], [2, 2])

    def test_intersection_disjoint_is_none(self):
        assert Rect([0, 0], [1, 1]).intersection(Rect([2, 2], [3, 3])) is None

    def test_union(self):
        combined = Rect([0, 0], [1, 1]).union(Rect([2, 2], [3, 3]))
        assert combined == Rect([0, 0], [3, 3])

    def test_extend(self):
        grown = Rect([1, 1], [2, 2]).extend(0.5)
        assert grown == Rect([0.5, 0.5], [2.5, 2.5])

    def test_extend_rejects_negative(self):
        with pytest.raises(ValueError):
            Rect([0, 0], [1, 1]).extend(-0.1)

    def test_union_point(self):
        grown = Rect([0, 0], [1, 1]).union_point([3, 0.5])
        assert grown == Rect([0, 0], [3, 1])

    def test_union_all(self):
        rects = [Rect([k, 0], [k + 1, 1]) for k in range(4)]
        assert union_all(rects) == Rect([0, 0], [4, 1])

    def test_union_all_rejects_empty(self):
        with pytest.raises(ValueError):
            union_all([])


class TestDistances:
    def test_min_dist_disjoint_euclidean(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([4, 5], [6, 7])
        assert a.min_dist(b) == pytest.approx(math.hypot(3, 4))

    def test_min_dist_overlapping_is_zero(self):
        assert Rect([0, 0], [2, 2]).min_dist(Rect([1, 1], [3, 3])) == 0.0

    def test_min_dist_linf(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([4, 5], [6, 7])
        assert a.min_dist(b, p=float("inf")) == 4.0

    def test_min_dist_symmetry(self):
        a = Rect([0, 0], [1, 2])
        b = Rect([5, -3], [6, -1])
        assert a.min_dist(b) == pytest.approx(b.min_dist(a))

    def test_min_dist_point(self):
        rect = Rect([0, 0], [1, 1])
        assert rect.min_dist_point([2, 1]) == 1.0
        assert rect.min_dist_point([0.5, 0.5]) == 0.0


class TestExtensionIntersectionEquivalence:
    """Extending both boxes by eps/2 and testing intersection is exactly
    the L-infinity mindist <= eps test — the prediction matrix relies on
    this equivalence."""

    @pytest.mark.parametrize("eps", [0.0, 0.1, 1.0, 3.0])
    def test_equivalence(self, eps, rng):
        for _ in range(50):
            lo1 = rng.uniform(-5, 5, size=3)
            lo2 = rng.uniform(-5, 5, size=3)
            a = Rect(lo1, lo1 + rng.uniform(0, 2, size=3))
            b = Rect(lo2, lo2 + rng.uniform(0, 2, size=3))
            by_extension = a.extend(eps / 2).intersects(b.extend(eps / 2))
            by_mindist = a.min_dist(b, p=float("inf")) <= eps
            assert by_extension == by_mindist

"""BoxArray must agree with per-Rect geometry on every vectorised operation."""

import numpy as np
import pytest

from repro.geometry import BoxArray, Rect, as_box_array, union_all


def random_rects(rng, n, d=3):
    lo = rng.uniform(-5, 5, size=(n, d))
    return [Rect(lo[k], lo[k] + rng.uniform(0, 3, size=d)) for k in range(n)]


class TestConstruction:
    def test_from_rects_roundtrip(self, rng):
        rects = random_rects(rng, 7)
        boxes = BoxArray.from_rects(rects)
        assert len(boxes) == 7 and boxes.dim == 3
        assert boxes.to_rects() == rects
        assert boxes[2] == rects[2]

    def test_from_rect_single(self):
        rect = Rect([0, 0], [1, 2])
        boxes = BoxArray.from_rect(rect)
        assert len(boxes) == 1
        assert boxes.rect(0) == rect

    def test_empty(self):
        boxes = BoxArray.empty(4)
        assert len(boxes) == 0 and boxes.dim == 4
        assert BoxArray.from_rects([]).to_rects() == []

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            BoxArray(np.ones((2, 2)), np.zeros((2, 2)))

    def test_fancy_indexing(self, rng):
        rects = random_rects(rng, 6)
        boxes = BoxArray.from_rects(rects)
        picked = boxes[np.array([4, 1])]
        assert picked.to_rects() == [rects[4], rects[1]]
        masked = boxes[np.array([True, False, True, False, False, False])]
        assert masked.to_rects() == [rects[0], rects[2]]

    def test_as_box_array_passthrough_and_coercion(self, rng):
        rects = random_rects(rng, 3)
        boxes = BoxArray.from_rects(rects)
        assert as_box_array(boxes) is boxes
        assert as_box_array(rects).to_rects() == rects


class TestVectorisedOps:
    def test_extend_matches_rect(self, rng):
        rects = random_rects(rng, 5)
        grown = BoxArray.from_rects(rects).extend(0.7)
        assert grown.to_rects() == [rect.extend(0.7) for rect in rects]

    def test_extend_zero_returns_self(self, rng):
        boxes = BoxArray.from_rects(random_rects(rng, 4))
        assert boxes.extend(0.0) is boxes

    def test_extend_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            BoxArray.from_rects(random_rects(rng, 2)).extend(-0.1)

    def test_intersects_matrix_matches_rect(self, rng):
        left = random_rects(rng, 8)
        right = random_rects(rng, 6)
        got = BoxArray.from_rects(left).intersects_matrix(BoxArray.from_rects(right))
        for i, a in enumerate(left):
            for j, b in enumerate(right):
                assert got[i, j] == a.intersects(b)

    def test_intersects_rect_matches(self, rng):
        rects = random_rects(rng, 10)
        probe = random_rects(rng, 1)[0]
        got = BoxArray.from_rects(rects).intersects_rect(probe)
        assert got.tolist() == [rect.intersects(probe) for rect in rects]

    @pytest.mark.parametrize("p", [1.0, 2.0, float("inf")])
    def test_min_dist_matrix_matches_rect(self, rng, p):
        left = random_rects(rng, 6)
        right = random_rects(rng, 5)
        got = BoxArray.from_rects(left).min_dist_matrix(BoxArray.from_rects(right), p)
        want = np.array([[a.min_dist(b, p) for b in right] for a in left])
        np.testing.assert_allclose(got, want)

    def test_clip_matches_intersection(self, rng):
        rects = random_rects(rng, 12)
        region = Rect([-1, -1, -1], [2, 2, 2])
        clipped, valid = BoxArray.from_rects(rects).clip(region)
        for k, rect in enumerate(rects):
            overlap = rect.intersection(region)
            assert valid[k] == (overlap is not None)
            if overlap is not None:
                assert clipped.rect(k) == overlap

    def test_union_matches_union_all(self, rng):
        rects = random_rects(rng, 9)
        assert BoxArray.from_rects(rects).union() == union_all(rects)

    def test_union_empty_raises(self):
        with pytest.raises(ValueError):
            BoxArray.empty(2).union()

    def test_union_with_elementwise(self, rng):
        left = random_rects(rng, 4)
        right = random_rects(rng, 4)
        got = BoxArray.from_rects(left).union_with(BoxArray.from_rects(right))
        assert got.to_rects() == [a.union(b) for a, b in zip(left, right)]


class TestRectExtendShortcut:
    def test_extend_zero_returns_self(self):
        rect = Rect([0, 1], [2, 3])
        assert rect.extend(0.0) is rect

    def test_extend_nonzero_allocates(self):
        rect = Rect([0, 1], [2, 3])
        grown = rect.extend(0.5)
        assert grown is not rect
        assert grown == Rect([-0.5, 0.5], [2.5, 3.5])

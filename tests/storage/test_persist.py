"""Round-trip tests for dataset persistence."""

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.storage.persist import load_dataset, save_dataset


class TestVectorRoundTrip:
    def test_join_identical_after_reload(self, rng, tmp_path):
        original = IndexedDataset.from_points(rng.random((200, 2)), page_capacity=16)
        other = IndexedDataset.from_points(rng.random((150, 2)), page_capacity=16)
        before = join(original, other, 0.05, method="sc", buffer_pages=10)

        save_dataset(original, tmp_path / "ds")
        restored = load_dataset(tmp_path / "ds")
        after = join(restored, other, 0.05, method="sc", buffer_pages=10)
        assert sorted(before.pairs) == sorted(after.pairs)
        assert before.report.page_reads == after.report.page_reads

    def test_structure_preserved(self, rng, tmp_path):
        original = IndexedDataset.from_points(rng.random((120, 3)), page_capacity=8)
        save_dataset(original, tmp_path / "ds")
        restored = load_dataset(tmp_path / "ds")
        assert restored.kind == "vector"
        assert restored.num_pages == original.num_pages
        assert np.array_equal(restored.index.order, original.index.order)
        assert np.array_equal(restored.paged.vectors, original.paged.vectors)
        for a, b in zip(restored.index.leaf_boxes, original.index.leaf_boxes):
            assert a == b
        assert restored.index.root.count_nodes() == original.index.root.count_nodes()

    def test_distance_preserved(self, rng, tmp_path):
        original = IndexedDataset.from_points(rng.random((50, 2)), page_capacity=8, p=1.0)
        save_dataset(original, tmp_path / "ds")
        restored = load_dataset(tmp_path / "ds")
        assert restored.distance.p == 1.0


class TestSequenceRoundTrip:
    def test_text_round_trip(self, dna_dataset, tmp_path):
        save_dataset(dna_dataset, tmp_path / "dna")
        restored = load_dataset(tmp_path / "dna")
        assert restored.kind == "text"
        assert restored.paged.sequence == dna_dataset.paged.sequence
        assert np.array_equal(restored.features, dna_dataset.features)
        before = join(dna_dataset, dna_dataset, 1, method="sc", buffer_pages=10)
        after = join(restored, restored, 1, method="sc", buffer_pages=10)
        assert sorted(before.pairs) == sorted(after.pairs)

    def test_series_round_trip(self, rng, tmp_path):
        seq = rng.normal(size=300).cumsum()
        original = IndexedDataset.from_time_series(seq, window_length=8, windows_per_page=16)
        save_dataset(original, tmp_path / "series")
        restored = load_dataset(tmp_path / "series")
        assert restored.kind == "series"
        assert np.array_equal(np.asarray(restored.paged.sequence), seq)

    def test_dtw_series_round_trip(self, rng, tmp_path):
        seq = rng.normal(size=300).cumsum()
        original = IndexedDataset.from_time_series(
            seq, window_length=8, windows_per_page=16, dtw_band=2
        )
        save_dataset(original, tmp_path / "dtw")
        restored = load_dataset(tmp_path / "dtw")
        assert restored.distance.band == 2
        before = join(original, original, 0.4, method="sc", buffer_pages=10)
        after = join(restored, restored, 0.4, method="sc", buffer_pages=10)
        assert sorted(before.pairs) == sorted(after.pairs)


class TestErrors:
    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope")

    def test_save_rejects_non_dataset(self, tmp_path):
        with pytest.raises(TypeError):
            save_dataset(object(), tmp_path / "x")

    def test_version_check(self, rng, tmp_path):
        import json

        ds = IndexedDataset.from_points(rng.random((20, 2)), page_capacity=8)
        path = save_dataset(ds, tmp_path / "v")
        meta = json.loads((path / "dataset.json").read_text())
        meta["format_version"] = 999
        (path / "dataset.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)

"""Unit tests for the simulated linear disk."""

import pytest

from repro.costmodel import CostModel
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk(CostModel(seek_s=0.010, transfer_s=0.001))


class TestPlacement:
    def test_contiguous_extents(self, disk):
        assert disk.place("a", 5) == 0
        assert disk.place("b", 3) == 5
        assert disk.total_blocks == 8
        assert disk.block_of("b", 0) == 5

    def test_duplicate_placement_rejected(self, disk):
        disk.place("a", 5)
        with pytest.raises(ValueError):
            disk.place("a", 5)

    def test_zero_pages_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.place("a", 0)

    def test_unknown_dataset(self, disk):
        with pytest.raises(KeyError):
            disk.block_of("nope", 0)

    def test_out_of_range_page(self, disk):
        disk.place("a", 5)
        with pytest.raises(IndexError):
            disk.block_of("a", 5)


class TestReadAccounting:
    def test_first_read_seeks(self, disk):
        disk.place("a", 10)
        disk.read("a", 3)
        assert disk.stats.transfers == 1
        assert disk.stats.seeks == 1
        assert disk.stats.io_seconds == pytest.approx(0.011)

    def test_sequential_run_one_seek(self, disk):
        disk.place("a", 10)
        for page in range(5):
            disk.read("a", page)
        assert disk.stats.transfers == 5
        assert disk.stats.seeks == 1
        assert disk.stats.io_seconds == pytest.approx(0.010 + 5 * 0.001)

    def test_backward_jump_seeks(self, disk):
        disk.place("a", 10)
        disk.read("a", 5)
        disk.read("a", 4)
        assert disk.stats.seeks == 2

    def test_skip_seeks(self, disk):
        disk.place("a", 10)
        disk.read("a", 0)
        disk.read("a", 2)
        assert disk.stats.seeks == 2

    def test_cross_dataset_adjacency_is_sequential(self, disk):
        # Extents are contiguous: last page of a is adjacent to first of b.
        disk.place("a", 2)
        disk.place("b", 2)
        disk.read("a", 1)
        disk.read("b", 0)
        assert disk.stats.seeks == 1

    def test_charge_stream(self, disk):
        disk.place("a", 100)
        disk.charge_stream(transfers=100, seeks=2)
        assert disk.stats.transfers == 100
        assert disk.stats.seeks == 2
        assert disk.stats.io_seconds == pytest.approx(0.02 + 0.1)
        # Head is invalidated: the next read seeks.
        disk.read("a", 0)
        assert disk.stats.seeks == 3

    def test_charge_stream_rejects_negative(self, disk):
        with pytest.raises(ValueError):
            disk.charge_stream(-1)


class TestCostOfReadSet:
    def test_empty(self, disk):
        disk.place("a", 10)
        assert disk.cost_of_read_set([]) == 0.0

    def test_one_run(self, disk):
        disk.place("a", 10)
        cost = disk.cost_of_read_set([("a", 2), ("a", 3), ("a", 4)])
        assert cost == pytest.approx(0.010 + 3 * 0.001)

    def test_two_runs(self, disk):
        disk.place("a", 10)
        cost = disk.cost_of_read_set([("a", 0), ("a", 1), ("a", 7)])
        assert cost == pytest.approx(2 * 0.010 + 3 * 0.001)

    def test_does_not_touch_state(self, disk):
        disk.place("a", 10)
        disk.cost_of_read_set([("a", 0), ("a", 5)])
        assert disk.stats.transfers == 0
        assert disk.head_block == -2

    def test_order_independent(self, disk):
        disk.place("a", 10)
        forward = disk.cost_of_read_set([("a", 1), ("a", 5), ("a", 2)])
        backward = disk.cost_of_read_set([("a", 5), ("a", 2), ("a", 1)])
        assert forward == pytest.approx(backward)

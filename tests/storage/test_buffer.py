"""Unit tests for the LRU buffer pool."""

import numpy as np
import pytest

from repro.storage.buffer import BufferPool
from repro.storage.page import VectorPagedDataset


@pytest.fixture
def dataset():
    return VectorPagedDataset(
        np.arange(40, dtype=float).reshape(20, 2), objects_per_page=2, dataset_id="d"
    )


@pytest.fixture
def pool(disk, dataset):
    pool = BufferPool(disk, capacity=4)
    pool.attach(dataset)
    return pool


class TestFetch:
    def test_miss_then_hit(self, pool, disk):
        pool.fetch("d", 0)
        assert disk.stats.transfers == 1
        pool.fetch("d", 0)
        assert disk.stats.transfers == 1
        assert disk.stats.buffer_hits == 1

    def test_payload_correct(self, pool, dataset):
        payload = pool.fetch("d", 3)
        assert np.array_equal(payload, dataset.page_objects(3))

    def test_lru_eviction_order(self, pool, disk):
        for page in range(4):
            pool.fetch("d", page)
        pool.fetch("d", 0)  # refresh 0; 1 is now LRU
        pool.fetch("d", 9)  # evicts 1
        assert pool.contains("d", 0)
        assert not pool.contains("d", 1)
        assert pool.contains("d", 9)

    def test_unattached_dataset_rejected(self, pool):
        with pytest.raises(KeyError):
            pool.fetch("unknown", 0)

    def test_capacity_must_be_positive(self, disk):
        with pytest.raises(ValueError):
            BufferPool(disk, capacity=0)


class TestAttach:
    def test_places_on_disk(self, disk, dataset):
        pool = BufferPool(disk, capacity=4)
        pool.attach(dataset)
        assert disk.is_placed("d")

    def test_idempotent(self, pool, dataset):
        pool.attach(dataset)  # same object: fine

    def test_conflicting_id_rejected(self, pool):
        other = VectorPagedDataset(np.zeros((4, 2)), objects_per_page=2, dataset_id="d")
        with pytest.raises(ValueError):
            pool.attach(other)


class TestLoadBatch:
    def test_reads_sorted_and_skips_resident(self, pool, disk):
        pool.fetch("d", 2)
        before = disk.stats.snapshot()
        missing = pool.load_batch([("d", 3), ("d", 1), ("d", 2)])
        delta = disk.stats.since(before)
        assert set(missing) == {("d", 1), ("d", 3)}
        assert delta.transfers == 2
        assert delta.buffer_hits == 1

    def test_consecutive_pages_one_seek(self, pool, disk):
        before = disk.stats.snapshot()
        pool.load_batch([("d", 5), ("d", 6), ("d", 7)])
        delta = disk.stats.since(before)
        assert delta.seeks == 1

    def test_rejects_oversized_batch(self, pool):
        with pytest.raises(ValueError):
            pool.load_batch([("d", k) for k in range(5)])

    def test_duplicates_collapse(self, pool, disk):
        pool.load_batch([("d", 1), ("d", 1), ("d", 1)])
        assert disk.stats.transfers == 1


class TestReservation:
    def test_reserve_shrinks_available(self, pool):
        assert pool.available == 4
        pool.reserve(2)
        assert pool.available == 2

    def test_reserve_evicts_down(self, pool):
        for page in range(4):
            pool.fetch("d", page)
        pool.reserve(3)
        assert len(pool.resident_pages()) == 1
        # LRU pages went first: only the most recent remains.
        assert pool.resident_pages() == [("d", 3)]

    def test_reserve_whole_buffer_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.reserve(4)

    def test_negative_reserve_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.reserve(-1)

    def test_release_restores(self, pool):
        pool.reserve(2)
        pool.reserve(0)
        assert pool.available == 4


class TestClear:
    def test_clear_drops_frames(self, pool, disk):
        pool.fetch("d", 0)
        pool.clear()
        assert not pool.contains("d", 0)
        pool.fetch("d", 0)
        assert disk.stats.transfers == 2

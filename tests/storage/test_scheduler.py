"""Unit tests for batch read planning."""

from repro.storage.scheduler import count_runs, plan_batch_read


class TestPlanBatchRead:
    def test_sorted_by_block(self, disk):
        disk.place("a", 10)
        disk.place("b", 10)
        plan = plan_batch_read(disk, [("b", 0), ("a", 3), ("a", 1)])
        assert plan == [("a", 1), ("a", 3), ("b", 0)]

    def test_deduplicates(self, disk):
        disk.place("a", 10)
        plan = plan_batch_read(disk, [("a", 1), ("a", 1)])
        assert plan == [("a", 1)]

    def test_empty(self, disk):
        assert plan_batch_read(disk, []) == []


class TestCountRuns:
    def test_single_run(self, disk):
        disk.place("a", 10)
        assert count_runs(disk, [("a", 2), ("a", 3), ("a", 4)]) == 1

    def test_fragmented(self, disk):
        disk.place("a", 10)
        assert count_runs(disk, [("a", 0), ("a", 2), ("a", 4)]) == 3

    def test_cross_dataset_run(self, disk):
        disk.place("a", 2)
        disk.place("b", 2)
        # a's last block and b's first block are physically adjacent.
        assert count_runs(disk, [("a", 1), ("b", 0)]) == 1

    def test_empty(self, disk):
        assert count_runs(disk, []) == 0

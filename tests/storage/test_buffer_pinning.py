"""Unit tests for pin-scoped staging (``BufferPool.pinned``)."""

import numpy as np
import pytest

from repro.storage.buffer import BufferPool, PinnedBatch
from repro.storage.page import VectorPagedDataset


@pytest.fixture
def dataset():
    return VectorPagedDataset(
        np.arange(40, dtype=float).reshape(20, 2), objects_per_page=2, dataset_id="d"
    )


def make_pool(disk, dataset, policy="lru", capacity=4):
    pool = BufferPool(disk, capacity=capacity, policy=policy)
    pool.attach(dataset)
    return pool


class TestPinnedStaging:
    def test_stages_like_load_batch(self, disk, dataset):
        pool = make_pool(disk, dataset)
        pool.fetch("d", 1)
        with pool.pinned([("d", 0), ("d", 1), ("d", 2)]) as staged:
            assert staged.missing == [("d", 0), ("d", 2)]
            assert disk.stats.transfers == 3
            assert disk.stats.buffer_hits == 1
            assert sorted(pool.pinned_pages()) == [("d", 0), ("d", 1), ("d", 2)]
        assert pool.pinned_pages() == []

    def test_eviction_skips_pinned(self, disk, dataset):
        pool = make_pool(disk, dataset, capacity=3)
        with pool.pinned([("d", 0), ("d", 1)]):
            pool.fetch("d", 2)
            # 0 is the LRU victim but pinned; 2 is the only evictable frame.
            pool.fetch("d", 9)
            assert pool.contains("d", 0)
            assert pool.contains("d", 1)
            assert not pool.contains("d", 2)

    def test_all_pinned_eviction_raises(self, disk, dataset):
        pool = make_pool(disk, dataset, capacity=2)
        with pool.pinned([("d", 0), ("d", 1)]):
            with pytest.raises(ValueError, match="pinned"):
                pool.fetch("d", 2)

    def test_over_pinning_raises(self, disk, dataset):
        pool = make_pool(disk, dataset, capacity=2)
        with pytest.raises(ValueError, match="exceeds the\n?\\s*available"):
            with pool.pinned([("d", 0), ("d", 1), ("d", 2)]):
                pass
        assert pool.pinned_pages() == []

    def test_nested_pins_release_in_order(self, disk, dataset):
        pool = make_pool(disk, dataset, capacity=4)
        with pool.pinned([("d", 0), ("d", 1)]):
            with pool.pinned([("d", 1), ("d", 2)]):
                assert sorted(pool.pinned_pages()) == [
                    ("d", 0), ("d", 1), ("d", 2),
                ]
            # Page 1 stays pinned by the outer scope.
            assert sorted(pool.pinned_pages()) == [("d", 0), ("d", 1)]
        assert pool.pinned_pages() == []

    def test_pins_released_when_body_raises(self, disk, dataset):
        pool = make_pool(disk, dataset)
        with pytest.raises(RuntimeError, match="boom"):
            with pool.pinned([("d", 0)]):
                raise RuntimeError("boom")
        assert pool.pinned_pages() == []

    def test_scope_not_reentrant(self, disk, dataset):
        pool = make_pool(disk, dataset)
        batch = pool.pinned([("d", 0)])
        with batch:
            with pytest.raises(RuntimeError, match="re-entrant"):
                batch.__enter__()

    def test_reserve_respects_pins(self, disk, dataset):
        pool = make_pool(disk, dataset, capacity=4)
        with pool.pinned([("d", 0), ("d", 1)]):
            pool.fetch("d", 2)
            pool.reserve(2)  # must evict down to 2 frames: victim is page 2
            assert pool.contains("d", 0)
            assert pool.contains("d", 1)
            assert not pool.contains("d", 2)


class TestPinnedAccountingIdentity:
    """Under LRU, pinned staging is a pure accounting no-op."""

    def _trace(self, disk, dataset, use_pins):
        pool = make_pool(disk, dataset, capacity=3)
        batches = [[("d", 0), ("d", 1)], [("d", 1), ("d", 2)], [("d", 0), ("d", 3)]]
        residents = []
        for batch in batches:
            if use_pins:
                with pool.pinned(batch):
                    pool.fetch(*batch[0])
                    pool.fetch(*batch[1])
            else:
                pool.load_batch(batch)
                pool.fetch(*batch[0])
                pool.fetch(*batch[1])
            residents.append(pool.resident_pages())
        return disk.stats.transfers, disk.stats.buffer_hits, residents

    def test_lru_trace_identical_with_and_without_pins(self, cost_model, dataset):
        from repro.storage.disk import SimulatedDisk

        plain = self._trace(SimulatedDisk(cost_model), dataset, use_pins=False)
        pinned = self._trace(SimulatedDisk(cost_model), dataset, use_pins=True)
        assert pinned == plain

    @pytest.mark.parametrize("policy", ["fifo", "mru"])
    def test_non_lru_pins_never_read_more(self, cost_model, dataset, policy):
        from repro.storage.disk import SimulatedDisk

        def reads(use_pins):
            disk = SimulatedDisk(cost_model)
            pool = make_pool(disk, dataset, policy=policy, capacity=3)
            for batch in (
                [("d", 0), ("d", 1), ("d", 2)],
                [("d", 1), ("d", 2), ("d", 3)],
                [("d", 0), ("d", 2), ("d", 3)],
            ):
                if use_pins:
                    with pool.pinned(batch):
                        for key in batch:
                            pool.fetch(*key)
                else:
                    pool.load_batch(batch)
                    for key in batch:
                        pool.fetch(*key)
            return disk.stats.transfers

        assert reads(True) <= reads(False)


class TestPolicyTracesWithPins(object):
    """Replacement behaviour stays policy-faithful on unpinned frames."""

    def test_fifo_evicts_oldest_unpinned(self, disk, dataset):
        pool = make_pool(disk, dataset, policy="fifo", capacity=3)
        for page in (0, 1, 2):
            pool.fetch("d", page)
        with pool.pinned([("d", 0)]):
            pool.fetch("d", 9)  # oldest is 0 (pinned) -> evict 1
            assert pool.contains("d", 0)
            assert not pool.contains("d", 1)

    def test_mru_evicts_hottest_unpinned(self, disk, dataset):
        pool = make_pool(disk, dataset, policy="mru", capacity=3)
        for page in (0, 1, 2):
            pool.fetch("d", page)
        with pool.pinned([("d", 2)]):
            pool.fetch("d", 9)  # hottest is 2 (pinned) -> evict 1
            assert pool.contains("d", 2)
            assert not pool.contains("d", 1)

    def test_eviction_events_still_recorded(self, cost_model, dataset):
        from repro.obs import InMemoryRecorder
        from repro.storage.disk import SimulatedDisk

        rec = InMemoryRecorder()
        disk = SimulatedDisk(cost_model, recorder=rec)
        pool = make_pool(disk, dataset, capacity=2)
        with pool.pinned([("d", 0)]):
            pool.fetch("d", 1)
            pool.fetch("d", 2)  # evicts 1, the only unpinned frame
        assert rec.counter("buffer.evictions") == 1
        (event,) = [e for e in rec.events if e["name"] == "buffer.evict"]
        assert event["fields"]["page"] == 1


class TestPinnedBatchExport:
    def test_exported_from_storage_package(self):
        import repro.storage as storage

        assert storage.PinnedBatch is PinnedBatch
        assert "PinnedBatch" in storage.__all__

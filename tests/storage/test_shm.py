"""Shared-memory arena lifecycle: parent owns, workers attach, no leaks.

The leak discipline under test (ISSUE 6, satellite 3): every segment is
created and unlinked by the parent's :class:`ShmArena`; a worker that
dies mid-shard cannot leak a segment because it never owned one.
"""

import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro.storage.page import (
    SequencePagedDataset,
    VectorPagedDataset,
    dataset_from_shm_spec,
    dataset_shm_spec,
)
from repro.storage.shm import (
    ShmArena,
    ShmAttachments,
    attach_array,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform without usable shared memory"
)

_SHM_DIR = Path("/dev/shm")


def _live_segments(names):
    """Which of ``names`` still exist as shm files (Linux) or attach OK."""
    alive = []
    for name in names:
        if _SHM_DIR.is_dir():
            if (_SHM_DIR / name.lstrip("/")).exists():
                alive.append(name)
        else:  # pragma: no cover - non-Linux fallback
            try:
                _, seg = attach_array(
                    type("S", (), {"name": name, "shape": (1,), "dtype": "<u1"})()
                )
            except FileNotFoundError:
                continue
            seg.close()
            alive.append(name)
    return alive


class TestArena:
    def test_share_attach_roundtrip(self):
        data = np.arange(20, dtype=np.float64).reshape(4, 5)
        with ShmArena() as arena:
            spec = arena.share(data)
            view, seg = attach_array(spec)
            try:
                np.testing.assert_array_equal(view, data)
                assert view.dtype == data.dtype
            finally:
                del view
                seg.close()

    def test_share_is_idempotent_per_array(self):
        data = np.arange(8.0)
        with ShmArena() as arena:
            assert arena.share(data) == arena.share(data)
            assert len(arena.segment_names) == 1

    def test_close_unlinks_everything(self):
        arena = ShmArena()
        arena.share(np.zeros(16))
        arena.share(np.ones((3, 3)))
        names = list(arena.segment_names)
        assert len(names) == 2
        arena.close()
        assert _live_segments(names) == []
        arena.close()  # idempotent

    def test_context_exit_unlinks_on_error(self):
        names = []
        with pytest.raises(RuntimeError):
            with ShmArena() as arena:
                arena.share(np.zeros(4))
                names = list(arena.segment_names)
                raise RuntimeError("worker pool blew up")
        assert _live_segments(names) == []

    def test_zero_byte_array_shares(self):
        with ShmArena() as arena:
            spec = arena.share(np.empty((0, 2), dtype=np.float64))
            view, seg = attach_array(spec)
            try:
                assert view.shape == (0, 2)
            finally:
                del view
                seg.close()


class TestAttachments:
    def test_attach_caches_by_name(self):
        with ShmArena() as arena:
            spec = arena.share(np.arange(6.0))
            attachments = ShmAttachments()
            try:
                a = attachments.attach(spec)
                b = attachments.attach(spec)
                assert a is b
            finally:
                del a, b
                attachments.close()

    def test_close_after_dropping_views(self):
        """The worker discipline: views die first, then close unmaps."""
        with ShmArena() as arena:
            spec = arena.share(np.arange(6.0))
            attachments = ShmAttachments()
            view = attachments.attach(spec)
            assert view[3] == 3.0
            del view
            attachments.close()
            attachments.close()  # idempotent


def _crash_after_attach(spec_payload):
    """Child: attach a segment, then die without any cleanup."""
    from repro.storage.shm import SharedArraySpec, attach_array

    spec = SharedArraySpec(*spec_payload)
    view, seg = attach_array(spec)
    assert view.size > 0
    os._exit(13)


class TestWorkerCrash:
    def test_crashed_worker_leaks_nothing(self):
        """Kill a worker holding an attachment; parent still reclaims."""
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with ShmArena() as arena:
            spec = arena.share(np.arange(32, dtype=np.float64))
            names = list(arena.segment_names)
            child = ctx.Process(
                target=_crash_after_attach,
                args=((spec.name, spec.shape, spec.dtype),),
            )
            child.start()
            child.join(timeout=60)
            assert child.exitcode == 13
            # Segment survives the crash (the parent still owns it)...
            assert _live_segments(names) == names
        # ...and the arena exit reclaims it.
        assert _live_segments(names) == []


class TestDatasetSpecs:
    def test_vector_roundtrip(self):
        data = np.arange(60, dtype=np.float64).reshape(30, 2)
        original = VectorPagedDataset(data, objects_per_page=4, dataset_id="V")
        with ShmArena() as arena:
            spec = dataset_shm_spec(original, arena.share)
            attachments = ShmAttachments()
            try:
                rebuilt = dataset_from_shm_spec(spec, attachments.attach)
                assert rebuilt.dataset_id == original.dataset_id
                assert rebuilt.num_pages == original.num_pages
                for page in range(original.num_pages):
                    np.testing.assert_array_equal(
                        rebuilt.page_objects(page), original.page_objects(page)
                    )
                del rebuilt
            finally:
                attachments.close()

    def test_text_roundtrip(self):
        rng = np.random.default_rng(3)
        text = "".join(rng.choice(list("ACGT"), size=400))
        original = SequencePagedDataset(
            text, symbols_per_page=64, window_length=12, dataset_id="T"
        )
        with ShmArena() as arena:
            spec = dataset_shm_spec(original, arena.share)
            attachments = ShmAttachments()
            try:
                rebuilt = dataset_from_shm_spec(spec, attachments.attach)
                assert rebuilt.is_text
                assert rebuilt.sequence == original.sequence
                assert rebuilt.num_pages == original.num_pages
                del rebuilt
            finally:
                attachments.close()

    def test_series_roundtrip(self):
        rng = np.random.default_rng(4)
        seq = rng.normal(size=300).cumsum()
        original = SequencePagedDataset(
            seq, symbols_per_page=32, window_length=12, dataset_id="W"
        )
        with ShmArena() as arena:
            spec = dataset_shm_spec(original, arena.share)
            attachments = ShmAttachments()
            try:
                rebuilt = dataset_from_shm_spec(spec, attachments.attach)
                assert not rebuilt.is_text
                np.testing.assert_array_equal(
                    np.asarray(rebuilt.sequence), seq
                )
                del rebuilt
            finally:
                attachments.close()

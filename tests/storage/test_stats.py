"""Unit tests for I/O stats and cost reports."""

import pytest

from repro.storage.stats import CostReport, IOStats


class TestIOStats:
    def test_snapshot_and_since(self):
        stats = IOStats()
        stats.transfers = 5
        stats.seeks = 2
        snap = stats.snapshot()
        stats.transfers = 9
        stats.io_seconds = 1.5
        delta = stats.since(snap)
        assert delta.transfers == 4
        assert delta.seeks == 0
        assert delta.io_seconds == 1.5

    def test_snapshot_is_independent(self):
        stats = IOStats(transfers=1)
        snap = stats.snapshot()
        stats.transfers = 10
        assert snap.transfers == 1

    def test_reset(self):
        stats = IOStats(transfers=3, seeks=1, buffer_hits=2, io_seconds=0.5)
        stats.reset()
        assert stats == IOStats()


class TestCostReport:
    def test_total(self):
        report = CostReport(
            method="sc", preprocess_seconds=1.0, cpu_seconds=2.0, io_seconds=3.0
        )
        assert report.total_seconds == pytest.approx(6.0)

    def test_describe_mentions_method_and_costs(self):
        report = CostReport(method="sc", io_seconds=1.25, result_pairs=7)
        text = report.describe()
        assert "sc" in text
        assert "1.250" in text
        assert "pairs=7" in text

    def test_frozen(self):
        report = CostReport(method="sc")
        with pytest.raises(AttributeError):
            report.io_seconds = 5.0  # type: ignore[misc]

"""Unit tests for disk access tracing."""

import pytest

from repro.storage.trace import AccessTrace, attach_trace


class TestAccessTrace:
    def test_records_reads(self, disk):
        disk.place("a", 10)
        trace = attach_trace(disk)
        disk.read("a", 0)
        disk.read("a", 1)
        disk.read("a", 5)
        assert len(trace) == 3
        assert trace.events[0] == ("a", 0, 0)

    def test_summary_runs(self, disk):
        disk.place("a", 10)
        trace = attach_trace(disk)
        for page in (0, 1, 2, 7, 8, 3):
            disk.read("a", page)
        summary = trace.summary()
        assert summary.total_reads == 6
        assert summary.run_count == 3
        assert summary.max_run_length == 3
        assert summary.total_seeks == 3
        assert summary.reads_per_dataset == {"a": 6}

    def test_seek_ratio(self, disk):
        disk.place("a", 10)
        trace = attach_trace(disk)
        for page in (0, 2, 4, 6):
            disk.read("a", page)
        assert trace.summary().seek_ratio == 1.0

    def test_empty_summary(self):
        summary = AccessTrace().summary()
        assert summary.total_reads == 0
        assert summary.seek_ratio == 0.0

    def test_describe(self, disk):
        disk.place("a", 4)
        trace = attach_trace(disk)
        disk.read("a", 0)
        assert "1 reads" in trace.summary().describe()


class TestTraceValidatesSchedules:
    def test_sc_reads_are_batched_runs(self, vector_pair):
        """SC's optimally scheduled cluster reads form long runs."""
        from repro.core.join import join
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import SimulatedDisk

        # Reproduce a join manually so the trace sees the disk.
        r, s = vector_pair
        from repro.core.executor import execute_clusters
        from repro.core.schedule import greedy_cluster_order
        from repro.core.square import square_clustering
        from repro.core.sweep import build_prediction_matrix

        matrix, _ = build_prediction_matrix(
            r.index.root, s.index.root, 0.05, r.num_pages, s.num_pages
        )
        clusters, _ = square_clustering(matrix, 10)
        ordered = greedy_cluster_order(clusters, r.paged.dataset_id, s.paged.dataset_id)
        disk = SimulatedDisk()
        trace = attach_trace(disk)
        pool = BufferPool(disk, 10)
        noop = lambda row, col, pr, ps: ([], 0, 0, 0.0)
        execute_clusters(ordered, pool, r.paged, s.paged, noop)
        summary = trace.summary()
        assert summary.total_reads > 0
        assert summary.mean_run_length > 1.0  # batched, not random

"""Unit tests for disk access tracing."""

from repro.storage.trace import AccessTrace


class TestAccessTrace:
    def test_records_reads(self, disk):
        disk.place("a", 10)
        trace = AccessTrace.attach(disk)
        disk.read("a", 0)
        disk.read("a", 1)
        disk.read("a", 5)
        assert len(trace) == 3
        assert trace.events[0] == ("a", 0, 0)

    def test_summary_runs(self, disk):
        disk.place("a", 10)
        trace = AccessTrace.attach(disk)
        for page in (0, 1, 2, 7, 8, 3):
            disk.read("a", page)
        summary = trace.summary()
        assert summary.total_reads == 6
        assert summary.run_count == 3
        assert summary.max_run_length == 3
        assert summary.total_seeks == 3
        assert summary.reads_per_dataset == {"a": 6}

    def test_seek_ratio(self, disk):
        disk.place("a", 10)
        trace = AccessTrace.attach(disk)
        for page in (0, 2, 4, 6):
            disk.read("a", page)
        assert trace.summary().seek_ratio == 1.0

    def test_empty_summary(self):
        summary = AccessTrace().summary()
        assert summary.total_reads == 0
        assert summary.seek_ratio == 0.0

    def test_describe(self, disk):
        disk.place("a", 4)
        trace = AccessTrace.attach(disk)
        disk.read("a", 0)
        assert "1 reads" in trace.summary().describe()

    def test_unsubscribe_stops_recording(self, disk):
        disk.place("a", 4)
        trace = AccessTrace.attach(disk)
        disk.read("a", 0)
        disk.unsubscribe(trace.record)
        disk.read("a", 1)
        assert len(trace) == 1

    def test_manual_record_applies_disk_seek_definition(self):
        trace = AccessTrace()
        for block in (0, 1, 2, 7):
            trace.record("a", block, block)
        assert trace.sequential_flags == [False, True, True, False]
        assert trace.summary().total_seeks == 2


class TestSeekReconciliation:
    """The trace's seeks must equal the disk's — one definition, one truth.

    Historically ``AccessTrace.summary()`` recomputed adjacency from its
    own events and always charged the first traced read as a seek, while
    ``SimulatedDisk`` used head movement — the two disagreed whenever a
    trace was attached mid-stream or a ``charge_stream`` invalidated the
    head between traced reads.  The trace now consumes the disk's own
    per-read verdict; these tests pin the reconciliation.
    """

    def test_trace_seeks_equal_disk_seeks(self, disk):
        disk.place("a", 20)
        trace = AccessTrace.attach(disk)
        before = disk.stats.seeks
        for page in (0, 1, 2, 9, 10, 3, 3, 4):
            disk.read("a", page)
        assert trace.summary().total_seeks == disk.stats.seeks - before
        assert trace.summary().run_count == trace.summary().total_seeks

    def test_trace_agrees_across_charge_stream(self, disk):
        """charge_stream invalidates the head; the next read seeks."""
        disk.place("a", 20)
        trace = AccessTrace.attach(disk)
        before = disk.stats.seeks
        disk.read("a", 0)
        disk.read("a", 1)
        # Bulk transfer: moves the head away.  Streamed seeks are charged
        # to the disk but produce no traced events, so charge none here to
        # keep the per-read comparison exact.
        disk.charge_stream(512, seeks=0)
        disk.read("a", 2)  # would look sequential to a naive trace
        assert trace.sequential_flags == [False, True, False]
        assert trace.summary().total_seeks == disk.stats.seeks - before

    def test_trace_attached_mid_stream(self, disk):
        """A trace attached after reads begins with the disk's verdict."""
        disk.place("a", 20)
        disk.read("a", 0)
        trace = AccessTrace.attach(disk)
        before = disk.stats.seeks
        disk.read("a", 1)  # sequential for the disk despite being trace event 0
        disk.read("a", 5)
        assert trace.sequential_flags == [True, False]
        assert trace.summary().total_seeks == disk.stats.seeks - before


class TestShimRemoved:
    def test_attach_trace_shim_is_gone(self):
        import repro.storage as storage
        import repro.storage.trace as trace_module

        assert not hasattr(trace_module, "attach_trace")
        assert not hasattr(storage, "attach_trace")
        assert "attach_trace" not in trace_module.__all__

    def test_subscriber_api_does_not_monkeypatch_read(self, disk):
        method_before = type(disk).read
        AccessTrace.attach(disk)
        assert "read" not in vars(disk)  # no instance-level override
        assert type(disk).read is method_before


class TestTraceValidatesSchedules:
    def test_sc_reads_are_batched_runs(self, vector_pair):
        """SC's optimally scheduled cluster reads form long runs."""
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import SimulatedDisk

        # Reproduce a join manually so the trace sees the disk.
        r, s = vector_pair
        from repro.core.executor import execute_clusters
        from repro.core.schedule import greedy_cluster_order
        from repro.core.square import square_clustering
        from repro.core.sweep import build_prediction_matrix

        matrix, _ = build_prediction_matrix(
            r.index.root, s.index.root, 0.05, r.num_pages, s.num_pages
        )
        clusters, _ = square_clustering(matrix, 10)
        ordered = greedy_cluster_order(clusters, r.paged.dataset_id, s.paged.dataset_id)
        disk = SimulatedDisk()
        trace = AccessTrace.attach(disk)
        pool = BufferPool(disk, 10)
        noop = lambda row, col, pr, ps: ([], 0, 0, 0.0)
        execute_clusters(ordered, pool, r.paged, s.paged, noop)
        summary = trace.summary()
        assert summary.total_reads > 0
        assert summary.mean_run_length > 1.0  # batched, not random

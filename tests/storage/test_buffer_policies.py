"""Unit tests for the non-default buffer replacement policies."""

import numpy as np
import pytest

from repro.storage.buffer import REPLACEMENT_POLICIES, BufferPool
from repro.storage.page import VectorPagedDataset


@pytest.fixture
def dataset():
    return VectorPagedDataset(
        np.arange(40, dtype=float).reshape(20, 2), objects_per_page=2, dataset_id="d"
    )


def make_pool(disk, dataset, policy):
    pool = BufferPool(disk, capacity=3, policy=policy)
    pool.attach(dataset)
    return pool


class TestPolicyValidation:
    def test_known_policies(self):
        assert set(REPLACEMENT_POLICIES) == {"lru", "fifo", "mru"}

    def test_unknown_rejected(self, disk):
        with pytest.raises(ValueError):
            BufferPool(disk, 4, policy="clock")


class TestFifo:
    def test_hit_does_not_refresh(self, disk, dataset):
        pool = make_pool(disk, dataset, "fifo")
        for page in (0, 1, 2):
            pool.fetch("d", page)
        pool.fetch("d", 0)  # hit; FIFO ignores recency
        pool.fetch("d", 9)  # evicts 0, the oldest arrival
        assert not pool.contains("d", 0)
        assert pool.contains("d", 1)

    def test_lru_contrast(self, disk, dataset):
        pool = make_pool(disk, dataset, "lru")
        for page in (0, 1, 2):
            pool.fetch("d", page)
        pool.fetch("d", 0)  # refresh
        pool.fetch("d", 9)  # evicts 1 under LRU
        assert pool.contains("d", 0)
        assert not pool.contains("d", 1)


class TestMru:
    def test_evicts_hottest(self, disk, dataset):
        pool = make_pool(disk, dataset, "mru")
        for page in (0, 1, 2):
            pool.fetch("d", page)
        pool.fetch("d", 9)  # evicts 2, the most recently used
        assert not pool.contains("d", 2)
        assert pool.contains("d", 0)
        assert pool.contains("d", 1)

    def test_sequential_flood_retains_prefix(self, disk, dataset):
        """MRU's claim to fame: a sequential sweep keeps early pages."""
        pool = make_pool(disk, dataset, "mru")
        for page in range(10):
            pool.fetch("d", page)
        assert pool.contains("d", 0)
        assert pool.contains("d", 1)


class TestPolicyThroughJoin:
    def test_join_results_policy_independent(self, vector_pair):
        from repro.core.join import join

        r, s = vector_pair
        reference = None
        for policy in REPLACEMENT_POLICIES:
            result = join(r, s, 0.05, method="sc", buffer_pages=8,
                          buffer_policy=policy)
            if reference is None:
                reference = sorted(result.pairs)
            assert sorted(result.pairs) == reference

    def test_unknown_policy_via_join(self, vector_pair):
        from repro.core.join import join

        r, s = vector_pair
        with pytest.raises(ValueError):
            join(r, s, 0.05, buffer_policy="clock")

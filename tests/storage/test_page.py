"""Unit tests for paged datasets."""

import numpy as np
import pytest

from repro.storage.page import SequencePagedDataset, VectorPagedDataset


class TestVectorPagedFixedCapacity:
    def test_paging(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        ds = VectorPagedDataset(data, objects_per_page=4)
        assert ds.num_pages == 3
        assert ds.num_objects == 10
        assert ds.object_count(0) == 4
        assert ds.object_count(2) == 2  # ragged tail
        assert np.array_equal(ds.page_objects(1), data[4:8])

    def test_global_ids(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        ds = VectorPagedDataset(data, objects_per_page=4)
        assert ds.global_object_id(0, 0) == 0
        assert ds.global_object_id(1, 3) == 7
        assert ds.global_object_id(2, 1) == 9
        with pytest.raises(IndexError):
            ds.global_object_id(2, 2)

    def test_page_of_object(self):
        ds = VectorPagedDataset(np.zeros((10, 2)), objects_per_page=4)
        assert ds.page_of_object(0) == 0
        assert ds.page_of_object(3) == 0
        assert ds.page_of_object(4) == 1
        assert ds.page_of_object(9) == 2
        with pytest.raises(IndexError):
            ds.page_of_object(10)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VectorPagedDataset(np.empty((0, 2)), objects_per_page=4)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            VectorPagedDataset(np.zeros((4, 2)), objects_per_page=0)


class TestVectorPagedExplicitOffsets:
    def test_offsets(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        ds = VectorPagedDataset(data, page_offsets=[0, 3, 4, 10])
        assert ds.num_pages == 3
        assert ds.object_count(1) == 1
        assert ds.page_slice(2) == (4, 10)
        assert ds.global_object_id(2, 5) == 9

    def test_rejects_both_arguments(self):
        with pytest.raises(ValueError):
            VectorPagedDataset(np.zeros((4, 2)), objects_per_page=2, page_offsets=[0, 4])

    def test_rejects_neither_argument(self):
        with pytest.raises(ValueError):
            VectorPagedDataset(np.zeros((4, 2)))

    @pytest.mark.parametrize(
        "offsets", [[1, 4], [0, 3], [0, 0, 4], [0, 3, 2, 4], [0]]
    )
    def test_rejects_bad_offsets(self, offsets):
        with pytest.raises(ValueError):
            VectorPagedDataset(np.zeros((4, 2)), page_offsets=offsets)


class TestSequencePagedText:
    def test_window_ownership(self):
        ds = SequencePagedDataset("ABCDEFGHIJ", symbols_per_page=3, window_length=4)
        # 7 windows, 3 per page -> 3 pages.
        assert ds.num_windows == 7
        assert ds.num_pages == 3
        assert ds.window_range(0) == (0, 3)
        assert ds.window_range(2) == (6, 7)

    def test_page_objects_are_windows(self):
        ds = SequencePagedDataset("ABCDEFGHIJ", symbols_per_page=3, window_length=4)
        assert ds.page_objects(0) == ["ABCD", "BCDE", "CDEF"]
        assert ds.page_objects(2) == ["GHIJ"]

    def test_page_of_offset(self):
        ds = SequencePagedDataset("ABCDEFGHIJ", symbols_per_page=3, window_length=4)
        assert ds.page_of_offset(0) == 0
        assert ds.page_of_offset(2) == 0
        assert ds.page_of_offset(3) == 1
        assert ds.page_of_offset(6) == 2
        with pytest.raises(IndexError):
            ds.page_of_offset(7)

    def test_global_ids_are_offsets(self):
        ds = SequencePagedDataset("ABCDEFGHIJ", symbols_per_page=3, window_length=4)
        assert ds.global_object_id(1, 0) == 3
        assert ds.global_object_id(2, 0) == 6

    def test_rejects_short_sequence(self):
        with pytest.raises(ValueError):
            SequencePagedDataset("AB", symbols_per_page=2, window_length=4)


class TestSequencePagedNumeric:
    def test_windows_are_strided_views(self):
        seq = np.arange(10, dtype=float)
        ds = SequencePagedDataset(seq, symbols_per_page=4, window_length=3)
        windows = ds.page_objects(0)
        assert windows.shape == (4, 3)
        assert np.array_equal(windows[0], [0, 1, 2])
        assert np.array_equal(windows[3], [3, 4, 5])

    def test_window_count(self):
        ds = SequencePagedDataset(np.arange(10, dtype=float), symbols_per_page=4, window_length=3)
        assert ds.num_windows == 8
        assert ds.num_pages == 2

    def test_rejects_2d_array(self):
        with pytest.raises(ValueError):
            SequencePagedDataset(np.zeros((3, 3)), symbols_per_page=2, window_length=2)

    def test_every_window_served_by_one_page(self):
        seq = np.arange(50, dtype=float)
        ds = SequencePagedDataset(seq, symbols_per_page=7, window_length=5)
        seen = []
        for page in range(ds.num_pages):
            start, stop = ds.window_range(page)
            windows = ds.page_objects(page)
            assert len(windows) == stop - start
            for local, offset in enumerate(range(start, stop)):
                assert np.array_equal(windows[local], seq[offset : offset + 5])
            seen.extend(range(start, stop))
        assert seen == list(range(ds.num_windows))

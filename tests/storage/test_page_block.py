"""Unit tests for columnar page views (``pages_view`` / ``PageBlock``)."""

import numpy as np
import pytest

from repro.storage.page import PageBlock, SequencePagedDataset, VectorPagedDataset


@pytest.fixture
def vectors():
    return np.arange(60, dtype=float).reshape(30, 2)


@pytest.fixture
def vec_dataset(vectors):
    return VectorPagedDataset(vectors, objects_per_page=4, dataset_id="v")


class TestVectorPagesView:
    def test_contiguous_pages_share_memory(self, vec_dataset, vectors):
        block = vec_dataset.pages_view([1, 2, 3])
        assert np.shares_memory(block.objects, vectors)
        assert np.array_equal(block.objects, vectors[4:16])

    def test_gapped_pages_gather(self, vec_dataset, vectors):
        block = vec_dataset.pages_view([0, 2, 5])
        assert block.objects.shape == (12, 2)
        expected = np.concatenate([vectors[0:4], vectors[8:12], vectors[20:24]])
        assert np.array_equal(block.objects, expected)
        assert block.starts.tolist() == [0, 4, 8]
        assert block.counts.tolist() == [4, 4, 4]
        assert block.global_starts.tolist() == [0, 8, 20]

    def test_stacked_to_page_and_global_mapping(self, vec_dataset):
        block = vec_dataset.pages_view([0, 2, 5])
        stacked = np.array([0, 3, 4, 7, 8, 11])
        assert block.page_index_of(stacked).tolist() == [0, 0, 1, 1, 2, 2]
        assert block.globalise(stacked).tolist() == [0, 3, 8, 11, 20, 23]

    def test_global_ids_cover_all_rows(self, vec_dataset):
        block = vec_dataset.pages_view([0, 2, 5])
        expected = [0, 1, 2, 3, 8, 9, 10, 11, 20, 21, 22, 23]
        assert block.global_ids.tolist() == expected
        everything = np.arange(block.total_objects)
        assert np.array_equal(block.globalise(everything), block.global_ids)

    def test_ragged_last_page(self, vectors):
        dataset = VectorPagedDataset(vectors, objects_per_page=8, dataset_id="v2")
        block = dataset.pages_view([3])  # 30 rows / 8 per page -> last has 6
        assert block.counts.tolist() == [6]
        assert np.array_equal(block.objects, vectors[24:30])

    def test_explicit_offsets_respected(self, vectors):
        dataset = VectorPagedDataset(
            vectors, page_offsets=[0, 5, 12, 30], dataset_id="v3"
        )
        block = dataset.pages_view([0, 2])
        assert block.counts.tolist() == [5, 18]
        assert block.global_starts.tolist() == [0, 12]
        assert np.array_equal(
            block.objects, np.concatenate([vectors[0:5], vectors[12:30]])
        )

    @pytest.mark.parametrize(
        "bad", [[], [2, 1], [0, 0], [-1], [99], np.zeros((2, 2), dtype=int)]
    )
    def test_invalid_page_lists_rejected(self, vec_dataset, bad):
        with pytest.raises(ValueError):
            vec_dataset.pages_view(bad)

    def test_matches_page_objects(self, vec_dataset):
        block = vec_dataset.pages_view([1, 4])
        for k, page in enumerate(block.page_nos.tolist()):
            start = int(block.starts[k])
            count = int(block.counts[k])
            assert np.array_equal(
                block.objects[start : start + count],
                vec_dataset.page_objects(page),
            )


class TestSequencePagesView:
    @pytest.fixture
    def series(self):
        return SequencePagedDataset(
            np.arange(40, dtype=float), symbols_per_page=6, window_length=5,
            dataset_id="s",
        )

    def test_numeric_rows_are_windows(self, series):
        block = series.pages_view([0, 2])
        start0, stop0 = series.window_range(0)
        start2, stop2 = series.window_range(2)
        expected = np.concatenate(
            [series.page_objects(0), series.page_objects(2)]
        )
        assert np.array_equal(block.objects, expected)
        assert block.global_starts.tolist() == [start0, start2]
        assert block.counts.tolist() == [stop0 - start0, stop2 - start2]

    def test_contiguous_numeric_is_view(self, series):
        block = series.pages_view([1, 2])
        assert np.shares_memory(block.objects, series.windows_matrix())

    def test_ragged_last_page(self, series):
        last = series.num_pages - 1
        block = series.pages_view([last])
        start, stop = series.window_range(last)
        assert block.counts.tolist() == [stop - start]

    def test_text_rows_are_byte_windows(self):
        text = "ACGTACGTACGTACGT"
        dataset = SequencePagedDataset(
            text, symbols_per_page=4, window_length=3, dataset_id="t"
        )
        block = dataset.pages_view([0, 2])
        for k, page in enumerate(block.page_nos.tolist()):
            start = int(block.starts[k])
            for local, window in enumerate(dataset.page_objects(page)):
                row = block.objects[start + local]
                assert bytes(row).decode("latin-1") == window

    def test_windows_matrix_cached(self, series):
        assert series.windows_matrix() is series.windows_matrix()


class TestPageBlockExport:
    def test_exported_from_storage_package(self):
        import repro.storage as storage

        assert storage.PageBlock is PageBlock
        assert "PageBlock" in storage.__all__

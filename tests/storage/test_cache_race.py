"""Matrix-cache load/invalidate races (satellite of the serving PR).

``invalidate_matrix_cache`` unlinks entries while other threads (or
sessions sharing one cache directory) are mid-``load_matrix``.  The
atomic tmp+``os.replace`` write discipline guarantees the final path
holds either a complete archive or nothing, and the read side retries a
file that vanishes between the existence pre-check and the open.  Under
that contract every concurrent load must return ``None`` or a complete,
equal matrix — never raise, never yield a torn archive.
"""

import threading
from pathlib import Path
from unittest import mock

import numpy as np

from repro.core.prediction import PredictionMatrix
from repro.storage import persist
from repro.storage.persist import (
    invalidate_matrix_cache,
    load_matrix,
    save_matrix,
)


def _matrix(num_pages=24, seed=0):
    rng = np.random.default_rng(seed)
    matrix = PredictionMatrix(num_pages, num_pages)
    rows = rng.integers(0, num_pages, size=140)
    cols = rng.integers(0, num_pages, size=140)
    matrix.mark_many(rows, cols)
    return matrix


class TestRetryOnMissing:
    def test_missing_entry_is_fast_miss_without_retries(self, tmp_path):
        sleeps = []
        with mock.patch.object(persist.time, "sleep", sleeps.append):
            assert load_matrix(tmp_path, "absent") is None
        assert sleeps == []

    def test_vanished_entry_retries_then_misses(self, tmp_path):
        save_matrix(_matrix(), tmp_path, "k")
        target = next(Path(tmp_path).glob("*.npz"))
        attempts = []
        real_load = np.load

        def vanishing_load(path, *args, **kwargs):
            attempts.append(path)
            raise FileNotFoundError(path)

        with mock.patch.object(persist.np, "load", vanishing_load), \
                mock.patch.object(persist.time, "sleep", lambda _s: None):
            assert persist._open_cache_entry(target) is None
        assert len(attempts) == persist._LOAD_RETRIES
        assert real_load is np.load  # patch confined to the persist module

    def test_entry_replaced_mid_retry_is_served(self, tmp_path):
        matrix = _matrix()
        save_matrix(matrix, tmp_path, "k")
        target = next(Path(tmp_path).glob("*.npz"))
        real_load = persist.np.load
        calls = {"n": 0}

        def flaky_load(path, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                # Simulate the invalidator's unlink landing between the
                # existence pre-check and the open; the concurrent
                # writer's os.replace restores it before the retry.
                raise FileNotFoundError(path)
            return real_load(path, *args, **kwargs)

        with mock.patch.object(persist.np, "load", flaky_load):
            loaded = load_matrix(tmp_path, "k")
        assert loaded == matrix
        assert calls["n"] == 2


class TestConcurrentStress:
    def test_readers_vs_invalidators_and_writers(self, tmp_path):
        matrix = _matrix()
        key = "stress"
        save_matrix(matrix, tmp_path, key)
        errors = []
        outcomes = {"hits": 0, "misses": 0}
        outcome_lock = threading.Lock()
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    loaded = load_matrix(tmp_path, key)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)
                    return
                if loaded is None:
                    with outcome_lock:
                        outcomes["misses"] += 1
                else:
                    if loaded != matrix:
                        errors.append(AssertionError("torn matrix served"))
                        return
                    with outcome_lock:
                        outcomes["hits"] += 1

        def invalidator():
            while not stop.is_set():
                try:
                    invalidate_matrix_cache(tmp_path, key)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)
                    return

        def writer():
            while not stop.is_set():
                try:
                    save_matrix(matrix, tmp_path, key)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)
                    return

        threads = (
            [threading.Thread(target=reader) for _ in range(4)]
            + [threading.Thread(target=invalidator) for _ in range(2)]
            + [threading.Thread(target=writer) for _ in range(2)]
        )
        for t in threads:
            t.start()
        timer = threading.Timer(1.5, stop.set)
        timer.start()
        for t in threads:
            t.join()
        timer.cancel()
        assert errors == []
        # The writers keep re-materialising the entry, so readers must
        # observe real hits; invalidators guarantee some misses too.
        assert outcomes["hits"] > 0
        assert outcomes["hits"] + outcomes["misses"] > 0

    def test_invalidate_all_races_with_writers(self, tmp_path):
        matrices = {f"k{i}": _matrix(seed=i) for i in range(4)}
        errors = []
        stop = threading.Event()

        def writer(key, matrix):
            while not stop.is_set():
                try:
                    save_matrix(matrix, tmp_path, key)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)
                    return

        def sweeper():
            while not stop.is_set():
                try:
                    invalidate_matrix_cache(tmp_path)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=writer, args=item)
            for item in matrices.items()
        ] + [threading.Thread(target=sweeper) for _ in range(2)]
        for t in threads:
            t.start()
        timer = threading.Timer(1.0, stop.set)
        timer.start()
        for t in threads:
            t.join()
        timer.cancel()
        assert errors == []
        # Post-race loads are clean: every key is either a miss or equal.
        for key, matrix in matrices.items():
            loaded = load_matrix(tmp_path, key)
            assert loaded is None or loaded == matrix

"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import landsat_like, markov_dna, random_walks, road_intersections
from repro.datasets.genome import repeat_library
from repro.datasets.timeseries import concatenated_walks


class TestRoadIntersections:
    def test_shape_and_range(self):
        pts = road_intersections(5000, seed=1)
        assert pts.shape == (5000, 2)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_deterministic(self):
        assert np.array_equal(road_intersections(500, seed=3), road_intersections(500, seed=3))

    def test_seed_changes_data(self):
        assert not np.array_equal(road_intersections(500, seed=3), road_intersections(500, seed=4))

    def test_clustered_not_uniform(self):
        """Urban cores make the point density strongly non-uniform."""
        pts = road_intersections(20000, seed=0)
        counts, _, _ = np.histogram2d(pts[:, 0], pts[:, 1], bins=10)
        # A uniform sample of 20k over 100 cells has std ~ sqrt(200) ≈ 14;
        # the clustered generator is far above that.
        assert counts.std() > 3 * np.sqrt(counts.mean())

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            road_intersections(0)


class TestLandsatLike:
    def test_shape_and_range(self):
        data = landsat_like(1000, seed=2)
        assert data.shape == (1000, 60)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_deterministic(self):
        assert np.array_equal(landsat_like(300, seed=5), landsat_like(300, seed=5))

    def test_patch_neighbours_are_close(self):
        """patch_size > 1 must create near-duplicate vectors."""
        data = landsat_like(3000, seed=0, patch_size=3)
        from scipy.spatial import cKDTree

        tree = cKDTree(data)
        nn_dist, _ = tree.query(data, k=2)
        close = (nn_dist[:, 1] < 0.05).mean()
        assert close > 0.3

    def test_low_intrinsic_dimensionality(self):
        data = landsat_like(2000, seed=1, latent_dim=4)
        centered = data - data.mean(axis=0)
        singular = np.linalg.svd(centered, compute_uv=False)
        energy = np.cumsum(singular**2) / np.sum(singular**2)
        assert energy[5] > 0.9  # a handful of directions dominate

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            landsat_like(0)
        with pytest.raises(ValueError):
            landsat_like(10, latent_dim=100)
        with pytest.raises(ValueError):
            landsat_like(10, patch_size=0)


class TestMarkovDna:
    def test_alphabet_and_length(self):
        dna = markov_dna(5000, seed=1)
        assert len(dna) == 5000
        assert set(dna) <= set("ACGT")

    def test_deterministic(self):
        assert markov_dna(2000, seed=7) == markov_dna(2000, seed=7)

    def test_gc_content_tracked(self):
        dna = markov_dna(50000, seed=0, gc_content=0.6, isochores=False, repeat_share=0.0)
        gc = (dna.count("G") + dna.count("C")) / len(dna)
        assert gc == pytest.approx(0.6, abs=0.03)

    def test_isochores_vary_local_composition(self):
        dna = markov_dna(60000, seed=0, repeat_share=0.0, isochores=True)
        block = 6000
        gcs = [
            (dna[k : k + block].count("G") + dna[k : k + block].count("C")) / block
            for k in range(0, len(dna), block)
        ]
        assert max(gcs) - min(gcs) > 0.1

    def test_repeats_create_similar_windows(self):
        dna = markov_dna(30000, seed=0, repeat_share=0.3)
        no_repeats = markov_dna(30000, seed=0, repeat_share=0.0)
        # Count exact duplicate 48-mers as a cheap proxy for self-similarity.
        def dup_fraction(s):
            seen = set()
            dups = 0
            for k in range(0, len(s) - 48, 16):
                window = s[k : k + 48]
                if window in seen:
                    dups += 1
                seen.add(window)
            return dups
        assert dup_fraction(dna) > dup_fraction(no_repeats)

    def test_shared_repeat_library_links_genomes(self):
        library = repeat_library(seed=3)
        a = markov_dna(20000, seed=1, repeats=library, repeat_share=0.3)
        b = markov_dna(20000, seed=2, repeats=library, repeat_share=0.3)
        proto = library[0][:40]
        # Both genomes should contain near-copies of the shared prototypes.
        assert proto in a or proto in b

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            markov_dna(0)
        with pytest.raises(ValueError):
            markov_dna(10, gc_content=1.5)
        with pytest.raises(ValueError):
            markov_dna(10, repeat_share=1.0)


class TestRandomWalks:
    def test_shape_and_normalisation(self):
        walks = random_walks(10, 500, seed=0)
        assert walks.shape == (10, 500)
        assert np.allclose(walks.mean(axis=1), 0.0, atol=1e-9)
        assert np.allclose(walks.std(axis=1), 1.0, atol=1e-9)

    def test_market_coupling_correlates_series(self):
        coupled = random_walks(20, 400, seed=1, market_coupling=0.9)
        loose = random_walks(20, 400, seed=1, market_coupling=0.0)
        corr_coupled = np.corrcoef(coupled).mean()
        corr_loose = np.corrcoef(loose).mean()
        assert corr_coupled > corr_loose

    def test_concatenated(self):
        seq = concatenated_walks(4, 100, seed=0)
        assert seq.shape == (400,)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_walks(0, 10)
        with pytest.raises(ValueError):
            random_walks(1, 10, market_coupling=2.0)

"""Unit tests for the epsilon-kdB tree baseline."""

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join


class TestEkdb:
    def test_results_match_sc(self, vector_pair):
        r, s = vector_pair
        ekdb = join(r, s, 0.05, method="ekdb", buffer_pages=10)
        sc = join(r, s, 0.05, method="sc", buffer_pages=10)
        assert sorted(ekdb.pairs) == sorted(sc.pairs)

    def test_self_join_matches_sc(self, rng):
        ds = IndexedDataset.from_points(rng.random((150, 2)), page_capacity=8)
        ekdb = join(ds, ds, 0.08, method="ekdb", buffer_pages=10)
        sc = join(ds, ds, 0.08, method="sc", buffer_pages=10)
        assert sorted(ekdb.pairs) == sorted(sc.pairs)

    def test_high_dimensional_depth_cap(self, rng):
        """Split depth is capped, so 60-d data still joins correctly."""
        from repro.datasets import landsat_like

        pool = landsat_like(400, seed=3)
        r = IndexedDataset.from_points(pool[:250], page_capacity=16)
        s = IndexedDataset.from_points(pool[250:], page_capacity=16)
        ekdb = join(r, s, 0.03, method="ekdb", buffer_pages=10)
        sc = join(r, s, 0.03, method="sc", buffer_pages=10)
        assert sorted(ekdb.pairs) == sorted(sc.pairs)
        assert ekdb.report.extra["ekdb_depth"] <= 4

    def test_zero_epsilon(self, rng):
        pts = rng.random((60, 2))
        r = IndexedDataset.from_points(pts, page_capacity=8)
        s = IndexedDataset.from_points(pts.copy(), page_capacity=8)
        result = join(r, s, 0.0, method="ekdb", buffer_pages=10)
        assert result.num_pairs == 60

    def test_rejects_sequence_data(self, dna_dataset):
        with pytest.raises(ValueError, match="point data"):
            join(dna_dataset, dna_dataset, 1, method="ekdb", buffer_pages=10)

    def test_reports_tile_statistics(self, vector_pair):
        r, s = vector_pair
        result = join(r, s, 0.05, method="ekdb", buffer_pages=10, count_only=True)
        assert result.report.extra["ekdb_tiles"] > 0
        assert result.report.extra["ekdb_tile_pairs"] > 0

    def test_count_only(self, vector_pair):
        r, s = vector_pair
        counted = join(r, s, 0.05, method="ekdb", buffer_pages=10, count_only=True)
        full = join(r, s, 0.05, method="ekdb", buffer_pages=10)
        assert counted.pairs == []
        assert counted.num_pairs == full.num_pairs

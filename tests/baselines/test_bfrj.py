"""Unit tests for the BFRJ baseline."""

import pytest

from repro.core.join import IndexedDataset, join
from repro.errors import InfeasibleBufferError


class TestBfrj:
    def test_results_match_sc(self, vector_pair):
        r, s = vector_pair
        bfrj = join(r, s, 0.05, method="bfrj", buffer_pages=12)
        sc = join(r, s, 0.05, method="sc", buffer_pages=12)
        assert sorted(bfrj.pairs) == sorted(sc.pairs)

    def test_self_join_matches_sc(self, rng):
        ds = IndexedDataset.from_points(rng.random((120, 2)), page_capacity=8)
        bfrj = join(ds, ds, 0.08, method="bfrj", buffer_pages=12)
        sc = join(ds, ds, 0.08, method="sc", buffer_pages=12)
        assert sorted(bfrj.pairs) == sorted(sc.pairs)

    def test_text_matches_sc(self, dna_dataset):
        bfrj = join(dna_dataset, dna_dataset, 1, method="bfrj", buffer_pages=12)
        sc = join(dna_dataset, dna_dataset, 1, method="sc", buffer_pages=12)
        assert sorted(bfrj.pairs) == sorted(sc.pairs)

    def test_charges_index_node_reads(self, vector_pair, cost_model):
        r, s = vector_pair
        result = join(r, s, 0.05, method="bfrj", buffer_pages=12,
                      cost_model=cost_model, count_only=True)
        leaf_pairs = result.report.extra["bfrj_leaf_pairs"]
        assert leaf_pairs > 0
        # Index traversal reads at least the two roots.
        assert result.report.page_reads > leaf_pairs * 0  # reads happened
        assert result.report.extra["bfrj_intersection_tests"] > 0

    def test_infeasible_when_join_index_exceeds_buffer(self, rng):
        """Figure 13(a): BFRJ has no data points at small buffers."""
        pts = rng.random((600, 2))
        r = IndexedDataset.from_points(pts, page_capacity=4)
        s = IndexedDataset.from_points(rng.random((600, 2)), page_capacity=4)
        with pytest.raises(InfeasibleBufferError):
            # Tiny buffer + tiny join-index pages => the level list overflows.
            join(r, s, 0.3, method="bfrj", buffer_pages=2)

    def test_join_index_reservation_reported(self, vector_pair, cost_model):
        r, s = vector_pair
        result = join(r, s, 0.05, method="bfrj", buffer_pages=12,
                      cost_model=cost_model, count_only=True)
        assert result.report.extra["bfrj_join_index_pages"] >= 1

"""Unit tests for the Z-order sort-merge baseline."""

import numpy as np
import pytest

from repro.baselines.zorder import morton_codes
from repro.core.join import IndexedDataset, join


class TestMortonCodes:
    def test_locality(self):
        # Nearby points get nearby codes more often than far points.
        pts = np.array([[0.0, 0.0], [0.01, 0.01], [0.9, 0.9]])
        codes = morton_codes(pts, cell=0.05)
        assert abs(int(codes[0]) - int(codes[1])) < abs(int(codes[0]) - int(codes[2]))

    def test_deterministic(self, rng):
        pts = rng.random((50, 3))
        assert np.array_equal(morton_codes(pts, 0.1), morton_codes(pts, 0.1))

    def test_high_dimensional_bit_cap(self, rng):
        codes = morton_codes(rng.random((20, 60)), 0.1)
        assert codes.dtype == np.uint64

    def test_validation(self):
        with pytest.raises(ValueError):
            morton_codes(np.empty((0, 2)), 0.1)
        with pytest.raises(ValueError):
            morton_codes(np.zeros((2, 2)), 0.0)


class TestZorderJoin:
    def test_results_match_sc(self, vector_pair):
        r, s = vector_pair
        z = join(r, s, 0.05, method="zorder", buffer_pages=10)
        sc = join(r, s, 0.05, method="sc", buffer_pages=10)
        assert sorted(z.pairs) == sorted(sc.pairs)

    def test_self_join_matches_sc(self, rng):
        ds = IndexedDataset.from_points(rng.random((150, 2)), page_capacity=8)
        z = join(ds, ds, 0.08, method="zorder", buffer_pages=10)
        sc = join(ds, ds, 0.08, method="sc", buffer_pages=10)
        assert sorted(z.pairs) == sorted(sc.pairs)

    def test_charges_sort(self, vector_pair, cost_model):
        r, s = vector_pair
        result = join(r, s, 0.05, method="zorder", buffer_pages=10,
                      cost_model=cost_model, count_only=True)
        assert result.report.page_reads >= 2 * (r.num_pages + s.num_pages)
        assert result.report.extra["zorder_box_tests"] > 0

    def test_rejects_sequence_data(self, dna_dataset):
        with pytest.raises(ValueError, match="point data"):
            join(dna_dataset, dna_dataset, 1, method="zorder", buffer_pages=10)

"""Unit tests for the block NLJ baseline."""

import math

import pytest

from repro.core.join import join


class TestBlockNLJ:
    def test_read_count_formula(self, vector_pair, cost_model):
        """NLJ reads outer once plus inner once per outer block."""
        r, s = vector_pair
        buffer_pages = 6
        result = join(r, s, 0.05, method="nlj", buffer_pages=buffer_pages,
                      cost_model=cost_model, count_only=True)
        pages_outer = min(r.num_pages, s.num_pages)
        pages_inner = max(r.num_pages, s.num_pages)
        blocks = math.ceil(pages_outer / (buffer_pages - 2))
        assert result.report.page_reads == pages_outer + blocks * pages_inner

    def test_mostly_sequential(self, vector_pair, cost_model):
        r, s = vector_pair
        result = join(r, s, 0.05, method="nlj", buffer_pages=6,
                      cost_model=cost_model, count_only=True)
        # Two seeks per block (one for the block, one for the inner scan).
        assert result.report.seeks <= 2 * math.ceil(min(r.num_pages, s.num_pages) / 4) + 2

    def test_cpu_counts_full_cross_product(self, vector_pair, cost_model):
        r, s = vector_pair
        result = join(r, s, 0.05, method="nlj", buffer_pages=6,
                      cost_model=cost_model, count_only=True)
        assert result.report.comparisons == r.num_objects * s.num_objects

    def test_self_join_counts_triangle(self, rng, cost_model):
        from repro.core.join import IndexedDataset

        ds = IndexedDataset.from_points(rng.random((60, 2)), page_capacity=8)
        result = join(ds, ds, 0.05, method="nlj", buffer_pages=6,
                      cost_model=cost_model, count_only=True)
        n = ds.num_objects
        assert result.report.comparisons == n * (n + 1) // 2

    def test_results_match_sc(self, vector_pair):
        r, s = vector_pair
        nlj = join(r, s, 0.05, method="nlj", buffer_pages=6)
        sc = join(r, s, 0.05, method="sc", buffer_pages=6)
        assert sorted(nlj.pairs) == sorted(sc.pairs)

    def test_buffer_growth_reduces_reads(self, vector_pair, cost_model):
        r, s = vector_pair
        small = join(r, s, 0.05, method="nlj", buffer_pages=4,
                     cost_model=cost_model, count_only=True)
        large = join(r, s, 0.05, method="nlj", buffer_pages=16,
                     cost_model=cost_model, count_only=True)
        assert large.report.page_reads < small.report.page_reads

"""Unit tests for the EGO baseline."""

import pytest

from repro.core.join import IndexedDataset, join


class TestEgoVectors:
    def test_results_match_sc(self, vector_pair):
        r, s = vector_pair
        ego = join(r, s, 0.05, method="ego", buffer_pages=10)
        sc = join(r, s, 0.05, method="sc", buffer_pages=10)
        assert sorted(ego.pairs) == sorted(sc.pairs)

    def test_self_join_matches_sc(self, rng):
        ds = IndexedDataset.from_points(rng.random((100, 2)), page_capacity=8)
        ego = join(ds, ds, 0.08, method="ego", buffer_pages=10)
        sc = join(ds, ds, 0.08, method="sc", buffer_pages=10)
        assert sorted(ego.pairs) == sorted(sc.pairs)

    def test_charges_sort_passes(self, vector_pair, cost_model):
        r, s = vector_pair
        result = join(r, s, 0.05, method="ego", buffer_pages=10,
                      cost_model=cost_model, count_only=True)
        # The re-sort alone reads + writes both datasets once per pass.
        assert result.report.page_reads >= 2 * (r.num_pages + s.num_pages)
        assert result.report.extra.get("ego_sort_passes", 0) >= 1

    def test_zero_epsilon(self, rng):
        pts = rng.random((50, 2))
        r = IndexedDataset.from_points(pts, page_capacity=8)
        s = IndexedDataset.from_points(pts.copy(), page_capacity=8)
        result = join(r, s, 0.0, method="ego", buffer_pages=10)
        assert result.num_pairs == 50  # each point matches its twin


class TestEgoSequence:
    def test_results_match_sc_on_text(self, dna_dataset):
        ego = join(dna_dataset, dna_dataset, 1, method="ego", buffer_pages=10)
        sc = join(dna_dataset, dna_dataset, 1, method="sc", buffer_pages=10)
        assert sorted(ego.pairs) == sorted(sc.pairs)

    def test_no_physical_reorder_for_text(self, dna_dataset, cost_model):
        result = join(dna_dataset, dna_dataset, 1, method="ego", buffer_pages=10,
                      cost_model=cost_model, count_only=True)
        assert result.report.extra.get("ego_logical_order") is True

    def test_sequence_ego_seek_heavy(self, dna_dataset, cost_model):
        """The paper's point: EGO on sequences pays random seeks."""
        ego = join(dna_dataset, dna_dataset, 1, method="ego", buffer_pages=10,
                   cost_model=cost_model, count_only=True)
        sc = join(dna_dataset, dna_dataset, 1, method="sc", buffer_pages=10,
                  cost_model=cost_model, count_only=True)
        assert ego.report.seeks > sc.report.seeks

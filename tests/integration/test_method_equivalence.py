"""Integration: every join method answers every query identically.

This is the load-bearing correctness property of the whole system — the
methods differ *only* in I/O schedule, never in the result.
"""

import numpy as np
import pytest

from repro.core.join import JOIN_METHODS, IndexedDataset, join


def run_all_methods(r, s, epsilon, buffer_pages):
    results = {}
    for method in JOIN_METHODS:
        results[method] = sorted(
            join(r, s, epsilon, method=method, buffer_pages=buffer_pages).pairs
        )
    return results


class TestVectorEquivalence:
    @pytest.mark.parametrize("epsilon", [0.02, 0.08])
    @pytest.mark.parametrize("buffer_pages", [6, 20])
    def test_cross_join(self, rng, epsilon, buffer_pages):
        r = IndexedDataset.from_points(rng.random((250, 2)), page_capacity=16)
        s = IndexedDataset.from_points(rng.random((180, 2)), page_capacity=16)
        results = run_all_methods(r, s, epsilon, buffer_pages)
        reference = results["nlj"]
        for method, pairs in results.items():
            assert pairs == reference, f"{method} disagrees with nlj"

    def test_high_dimensional(self, rng):
        from repro.datasets import landsat_like

        pool = landsat_like(700, seed=1)
        r = IndexedDataset.from_points(pool[:400], page_capacity=16)
        s = IndexedDataset.from_points(pool[400:], page_capacity=16)
        results = run_all_methods(r, s, 0.03, 12)
        reference = results["nlj"]
        assert reference, "calibration: the high-d join should find pairs"
        for method, pairs in results.items():
            assert pairs == reference, f"{method} disagrees with nlj"

    def test_self_join(self, rng):
        ds = IndexedDataset.from_points(rng.random((200, 2)), page_capacity=16)
        results = {
            m: sorted(join(ds, ds, 0.05, method=m, buffer_pages=10).pairs)
            for m in JOIN_METHODS
        }
        reference = results["nlj"]
        for method, pairs in results.items():
            assert pairs == reference, f"{method} disagrees with nlj"


SEQUENCE_METHODS = [m for m in JOIN_METHODS if m not in ("ekdb", "zorder")]  # point-only methods


class TestTextEquivalence:
    @pytest.mark.parametrize("epsilon", [0, 1, 2])
    def test_self_join(self, dna_dataset, epsilon):
        results = {
            m: sorted(join(dna_dataset, dna_dataset, epsilon, method=m, buffer_pages=10).pairs)
            for m in SEQUENCE_METHODS
        }
        reference = results["nlj"]
        for method, pairs in results.items():
            assert pairs == reference, f"{method} disagrees with nlj at eps={epsilon}"

    def test_cross_join(self):
        from repro.datasets import markov_dna
        from repro.datasets.genome import repeat_library

        library = repeat_library(seed=0)
        a = IndexedDataset.from_string(
            markov_dna(1200, seed=1, repeats=library, repeat_share=0.3),
            window_length=10, windows_per_page=32,
        )
        b = IndexedDataset.from_string(
            markov_dna(900, seed=2, repeats=library, repeat_share=0.3),
            window_length=10, windows_per_page=32,
        )
        results = {
            m: sorted(join(a, b, 1, method=m, buffer_pages=10).pairs)
            for m in SEQUENCE_METHODS
        }
        reference = results["nlj"]
        assert reference, "shared repeats should produce cross matches"
        for method, pairs in results.items():
            assert pairs == reference, f"{method} disagrees with nlj"


class TestSeriesEquivalence:
    def test_self_join(self, rng):
        seq = rng.normal(size=600).cumsum()
        ds = IndexedDataset.from_time_series(seq, window_length=12, windows_per_page=24)
        results = {
            m: sorted(join(ds, ds, 0.3, method=m, buffer_pages=10).pairs)
            for m in SEQUENCE_METHODS
        }
        reference = results["nlj"]
        for method, pairs in results.items():
            assert pairs == reference, f"{method} disagrees with nlj"

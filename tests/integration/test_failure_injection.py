"""Failure injection: the system must *detect* broken invariants, not
silently produce wrong answers or wrong accounting."""

import numpy as np
import pytest

from repro.core.clusters import Cluster
from repro.core.executor import execute_clusters
from repro.core.join import IndexedDataset, join
from repro.core.pm_nlj import pm_nlj_join
from repro.core.prediction import PredictionMatrix
from repro.errors import InfeasibleBufferError
from repro.experiments.harness import run_methods
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


class TestLossyPredictorIsObservable:
    def test_dropped_matrix_entry_loses_results(self, vector_pair):
        """A faulty (non-complete) predictor visibly changes the result —
        the agreement check in the harness exists to catch exactly this."""
        r, s = vector_pair
        full = join(r, s, 0.05, method="pm-nlj", buffer_pages=8,
                    keep_details=True)
        matrix = full.matrix
        assert matrix is not None
        # Drop a marked entry that actually carries results.
        productive = None
        for row, col in matrix.entries():
            joiner_pairs = [
                (a, b) for a, b in full.pairs
                if r.paged.page_of_object(a) == row and s.paged.page_of_object(b) == col
            ]
            if joiner_pairs:
                productive = (row, col)
                break
        assert productive is not None
        matrix.unmark(*productive)

        disk = SimulatedDisk()
        pool = BufferPool(disk, 8)
        from repro.core.joiners import make_numeric_joiner
        from repro.costmodel import DEFAULT_COST_MODEL

        joiner = make_numeric_joiner(
            r.paged, s.paged, r.distance, 0.05, DEFAULT_COST_MODEL, False
        )
        outcome = pm_nlj_join(matrix, pool, r.paged, s.paged, joiner)
        assert outcome.num_pairs < full.num_pairs

    def test_harness_flags_disagreeing_methods(self, vector_pair, monkeypatch):
        r, s = vector_pair

        import repro.experiments.harness as harness_module

        original_join = harness_module.join

        def corrupted_join(*args, **kwargs):
            result = original_join(*args, **kwargs)
            if kwargs.get("method", args[3] if len(args) > 3 else None) == "sc":
                object.__setattr__(result.report, "result_pairs",
                                   result.report.result_pairs + 1)
            return result

        monkeypatch.setattr(harness_module, "join", corrupted_join)
        with pytest.raises(AssertionError, match="disagree"):
            run_methods(r, s, 0.05, ["nlj", "sc"], buffer_pages=8)


class TestResourceViolationsRaise:
    def test_oversized_cluster_rejected_by_executor(self, vector_pair):
        r, s = vector_pair
        disk = SimulatedDisk()
        pool = BufferPool(disk, 3)
        huge = Cluster(0, tuple((row, 0) for row in range(5)))
        noop = lambda row, col, pr, ps: ([], 0, 0, 0.0)
        with pytest.raises(ValueError, match="exceeds available buffer"):
            execute_clusters([huge], pool, r.paged, s.paged, noop)

    def test_bfrj_raises_not_thrashes(self, rng):
        r = IndexedDataset.from_points(rng.random((500, 2)), page_capacity=4)
        with pytest.raises(InfeasibleBufferError):
            join(r, r, 0.5, method="bfrj", buffer_pages=2)

    def test_matrix_bounds_violation_raises(self):
        matrix = PredictionMatrix(4, 4)
        with pytest.raises(IndexError):
            matrix.mark(4, 0)

    def test_buffer_never_exceeds_capacity_under_load(self, vector_pair):
        """Even under adversarial access patterns, the frame count is bounded."""
        r, s = vector_pair
        disk = SimulatedDisk()
        pool = BufferPool(disk, 5)
        pool.attach(r.paged)
        rng = np.random.default_rng(0)
        for _ in range(500):
            pool.fetch(r.paged.dataset_id, int(rng.integers(0, r.num_pages)))
            assert len(pool.resident_pages()) <= 5

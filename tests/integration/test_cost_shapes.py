"""Integration: the paper's qualitative cost claims hold on small instances.

These tests pin the *shape* results — which method wins, and in which
regime — at sizes small enough for CI.  The full-scale versions live in
the benchmark suite.
"""

import numpy as np
import pytest

from repro.core.join import IndexedDataset, join
from repro.costmodel import CostModel
from repro.datasets import markov_dna, road_intersections


@pytest.fixture(scope="module")
def spatial_pair():
    r = IndexedDataset.from_points(road_intersections(8000, seed=0), page_capacity=64)
    s = IndexedDataset.from_points(road_intersections(6000, seed=1), page_capacity=64)
    return r, s


@pytest.fixture(scope="module")
def genome():
    return IndexedDataset.from_string(
        markov_dna(8000, seed=0, repeat_share=0.1),
        window_length=192,
        windows_per_page=64,
    )


MODEL = CostModel(seek_s=0.003, transfer_s=0.001)


def total(ds_pair, method, buffer_pages, epsilon=0.01, model=MODEL):
    r, s = ds_pair
    return join(
        r, s, epsilon, method=method, buffer_pages=buffer_pages,
        cost_model=model, count_only=True,
    ).report


class TestOptimisationLadder:
    """Figure 10/11's story: each optimisation improves on the previous."""

    def test_prediction_cuts_cpu(self, spatial_pair):
        nlj = total(spatial_pair, "nlj", 8)
        pm = total(spatial_pair, "pm-nlj", 8)
        assert pm.cpu_seconds < nlj.cpu_seconds / 3

    def test_clustering_cuts_io_over_pm_nlj(self, spatial_pair):
        pm = total(spatial_pair, "pm-nlj", 8)
        rand_sc = total(spatial_pair, "rand-sc", 8)
        assert rand_sc.io_seconds < pm.io_seconds

    def test_scheduling_cuts_io_over_random_order(self, spatial_pair):
        rand_sc = total(spatial_pair, "rand-sc", 8)
        sc = total(spatial_pair, "sc", 8)
        assert sc.io_seconds < rand_sc.io_seconds

    def test_sc_total_beats_nlj_total(self, spatial_pair):
        nlj = total(spatial_pair, "nlj", 8)
        sc = total(spatial_pair, "sc", 8)
        assert sc.total_seconds < nlj.total_seconds / 3

    def test_same_ladder_on_sequence_data(self, genome):
        pair = (genome, genome)
        model = CostModel.for_page_size(4.0)
        nlj = total(pair, "nlj", 8, epsilon=1, model=model)
        pm = total(pair, "pm-nlj", 8, epsilon=1, model=model)
        rand_sc = total(pair, "rand-sc", 8, epsilon=1, model=model)
        sc = total(pair, "sc", 8, epsilon=1, model=model)
        assert pm.cpu_seconds < nlj.cpu_seconds
        assert rand_sc.io_seconds < pm.io_seconds
        assert sc.io_seconds <= rand_sc.io_seconds
        assert sc.total_seconds < nlj.total_seconds


class TestTable2Shape:
    def test_cc_io_close_to_sc(self, spatial_pair):
        """Table 2: CC is the lower bound and SC stays close (within 2x)."""
        sc = total(spatial_pair, "sc", 10)
        cc = total(spatial_pair, "cc", 10)
        assert cc.io_seconds <= sc.io_seconds * 1.25
        assert sc.io_seconds <= cc.io_seconds * 2.0

    def test_io_decreases_with_buffer(self, spatial_pair):
        previous = None
        for buffer_pages in (6, 12, 24, 48):
            current = total(spatial_pair, "sc", buffer_pages).io_seconds
            if previous is not None:
                assert current <= previous * 1.05
            previous = current


class TestFigure12Knee:
    def test_pm_nlj_converges_to_sc_at_large_buffers(self, genome):
        """Beyond the knee (dataset fits in buffer) pm-NLJ ≈ SC I/O."""
        model = CostModel.for_page_size(4.0)
        pair = (genome, genome)
        big = genome.num_pages + 2
        pm = total(pair, "pm-nlj", big, epsilon=1, model=model)
        sc = total(pair, "sc", big, epsilon=1, model=model)
        assert pm.io_seconds <= sc.io_seconds * 1.3
        # And at a small buffer they are far apart.
        pm_small = total(pair, "pm-nlj", 8, epsilon=1, model=model)
        sc_small = total(pair, "sc", 8, epsilon=1, model=model)
        assert pm_small.io_seconds > sc_small.io_seconds * 1.5


class TestSequenceCompetitors:
    def test_ego_degrades_on_sequence_data(self, genome):
        """Figure 13(c): EGO pays random seeks it cannot avoid."""
        model = CostModel.for_page_size(4.0)
        pair = (genome, genome)
        ego = total(pair, "ego", 10, epsilon=1, model=model)
        sc = total(pair, "sc", 10, epsilon=1, model=model)
        assert sc.total_seconds < ego.total_seconds
